"""The asyncio HTTP front-end and worker pool of ``zatel serve``.

Architecture (one process, stdlib only)::

    asyncio event loop (HTTP/1.1 over asyncio streams)
      POST /predict   validate -> fingerprint -> result cache ->
                      bounded single-flight queue -> await job
      GET  /jobs/<id> job status / result
      GET  /healthz   liveness (always 200 while the process serves)
      GET  /readyz    readiness (503 + reasons when saturated or the
                      fleet is below its worker quorum)
      GET  /metrics   telemetry-bus counters + latency histograms
                 |
            JobQueue (bounded, single-flight, 429 on overflow)
                 |
    worker threads (N)  ->  ServiceRunner.execute(spec)
                              -> stage graph over the shared
                                 ArtifactStore, groups through the
                                 fault-tolerant GroupExecutor

The front-end never blocks the event loop on simulation work: waiting
handlers park on the job's event via ``asyncio.to_thread``.  Worker
threads hold the GIL only between simulator steps; per-prediction
parallelism still comes from ``GroupExecutor``'s forked workers (set
``ExecutionPolicy.workers`` on the service policy), so service workers
are *throughput* knobs (how many requests progress concurrently), not
CPU knobs.

Shutdown is graceful by default: stop intake (new submits get 503),
drain in-flight jobs, then stop the loop — so a deploy never discards
accepted work.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from collections import OrderedDict
from typing import Any, Callable

from ..gpu.telemetry import SERVICE_LATENCY_EDGES, ServiceStats, TelemetryBus
from ..harness.service import ServiceRunner
from .cache import ResultCache
from .dashboard import DashboardRouter, RawBody, histogram_views, structure_counters
from .protocol import (
    format_ready_line,
    parse_campaign_payload,
    parse_predict_payload,
)
from .queue import JOB_DONE, JobQueue, QueueClosedError, QueueFullError

__all__ = ["ZatelService"]

logger = logging.getLogger("repro.service")

#: Largest accepted request body; a predict body is a few hundred bytes.
MAX_BODY_BYTES = 1 << 20

#: Per-connection header/body read budget (seconds).
READ_TIMEOUT = 30.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ZatelService:
    """The prediction service: front-end, queue, workers, caches.

    Args:
        runner: harness :class:`~repro.harness.runner.Runner` providing
            the shared artifact store (default: the process-wide one).
        host/port: bind address; ``port=0`` picks an ephemeral port
            (``self.port`` holds the real one once ``started`` is set).
        workers: worker threads consuming the job queue.
        queue_capacity: max queued + running jobs before 429s.
        policy: :class:`~repro.core.executor.ExecutionPolicy` applied to
            every served prediction (e.g. forked group workers).
        executor_fn: override of the per-spec execution function —
            tests inject deterministic/blocking stand-ins here.
        use_cache: serve repeat requests from the result cache.
        wait_timeout: cap on how long a ``wait=true`` request blocks
            before returning 504 with the job id (``None`` = unbounded).
        drain_timeout: graceful-shutdown budget for in-flight jobs;
            jobs still running at the deadline are abandoned as failed
            so the process exits cleanly.
        fleet: optional :class:`~repro.fleet.coordinator.
            FleetCoordinator` — served predictions scatter their group
            simulations to its workers; its stats join ``/metrics`` and
            its view joins ``/healthz`` and the ``/readyz`` quorum.
        fleet_supervisor: optional :class:`~repro.fleet.supervisor.
            WorkerSupervisor` to stop (before the fleet drains) at
            shutdown.
        timeline_interval: snapshot interval (cycles) for the telemetry
            instrumentation served predictions run with so the dashboard
            has timelines to show; ``0`` disables instrumentation (and
            ``/api/timeline`` reports no captures).  Enabling telemetry
            never changes a prediction's metrics, so cached/golden
            results are unaffected.
        trace_history: how many recent prediction timelines the
            dashboard keeps (a bounded ring; oldest evicted first).
    """

    def __init__(
        self,
        runner=None,
        host: str = "127.0.0.1",
        port: int = 8700,
        workers: int = 2,
        queue_capacity: int = 16,
        policy=None,
        executor_fn: Callable[[Any], dict] | None = None,
        use_cache: bool = True,
        wait_timeout: float | None = 600.0,
        drain_timeout: float = 60.0,
        job_history: int = 1024,
        fleet=None,
        fleet_supervisor=None,
        timeline_interval: int = 1024,
        trace_history: int = 8,
    ) -> None:
        if workers < 1:
            raise ValueError("service needs at least one worker")
        self.fleet = fleet
        self.fleet_supervisor = fleet_supervisor
        self.service_runner = ServiceRunner(
            runner,
            policy=policy,
            fleet=fleet,
            timeline_interval=timeline_interval,
            timeline_sink=self._record_trace,
        )
        self.host = host
        self.port = port
        self.num_workers = workers
        self.wait_timeout = wait_timeout
        self.drain_timeout = drain_timeout
        self.job_history = job_history

        self.stats = ServiceStats()
        # interval=1 keeps the bus enabled so /metrics is a literal dump
        # of telemetry-bus counters; the service never drives advance().
        self.bus = TelemetryBus(interval=1)
        self.bus.register("service", self.stats)
        if fleet is not None:
            self.bus.register("fleet", fleet.stats)
        self.queue = JobQueue(queue_capacity)
        self.cache = (
            ResultCache(self.service_runner.runner.store, self.stats)
            if use_cache
            else None
        )
        self.jobs: OrderedDict[str, Any] = OrderedDict()
        self._jobs_lock = threading.Lock()
        self.trace_history = trace_history
        self._traces: OrderedDict[str, dict] = OrderedDict()
        self._traces_lock = threading.Lock()
        self._trace_counter = 0
        self.dashboard = DashboardRouter(self, stats=self.stats)
        self._executor_fn = executor_fn or self._execute_job
        self._worker_threads: list[threading.Thread] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self.started = threading.Event()
        self._start_time = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Serve until :meth:`shutdown` (or KeyboardInterrupt); blocking."""
        try:
            asyncio.run(self._serve())
        except KeyboardInterrupt:
            # _serve's finally already drained; nothing left to do.
            pass

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._start_time = time.monotonic()
        self._start_workers()
        server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        logger.info(
            "zatel service listening on http://%s:%d (%d workers, queue %d)",
            self.host, self.port, self.num_workers, self.queue.capacity,
        )
        # Machine-readable port report: launchers binding --port 0 read
        # the kernel-chosen port from this line (see protocol.READY_PREFIX).
        print(format_ready_line(self.host, self.port), flush=True)
        self.started.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            self.started.clear()
            self._drain()

    def shutdown(self) -> None:
        """Request a graceful stop (thread-safe; returns immediately)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(stop.set)

    def background(self):
        """Context manager running the service in a daemon thread.

        ::

            with ZatelService(port=0).background() as service:
                url = f"http://127.0.0.1:{service.port}"
        """
        from contextlib import contextmanager

        @contextmanager
        def _running():
            thread = threading.Thread(target=self.run, daemon=True)
            thread.start()
            if not self.started.wait(timeout=15.0):
                raise RuntimeError("service failed to start within 15s")
            try:
                yield self
            finally:
                self.shutdown()
                thread.join(timeout=self.drain_timeout + 15.0)

        return _running()

    def _drain(self) -> None:
        """Graceful-shutdown tail: stop intake, finish accepted work.

        Jobs still unfinished at the drain deadline (hung simulation,
        wedged fleet gather) are *abandoned* — recorded as failed so
        their waiters wake with an error — and the process exits cleanly
        instead of blocking on them forever.
        """
        inflight = self.queue.depth
        self.queue.close()
        if inflight:
            logger.info("draining %d in-flight job(s)", inflight)
        if not self.queue.drain(timeout=self.drain_timeout):
            abandoned = self.queue.abandon(
                f"service shut down with the job still running after the "
                f"{self.drain_timeout:g}s drain deadline"
            )
            self.stats.failed += abandoned
            self.stats.abandoned += abandoned
            logger.warning(
                "drain timed out after %gs; abandoned %d hung job(s) as failed",
                self.drain_timeout, abandoned,
            )
        if self.fleet_supervisor is not None:
            # Stop respawning first, then SIGTERM the worker processes so
            # they drain before the coordinator dismisses the fleet.
            self.fleet_supervisor.stop()
        if self.fleet is not None:
            # Unblocks any worker thread still stuck in a fleet gather
            # (its leases fail terminally), then dismisses the workers.
            self.fleet.drain(timeout=min(5.0, self.drain_timeout))
        for thread in self._worker_threads:
            thread.join(timeout=5.0)
        self._worker_threads.clear()

    # ------------------------------------------------------------------
    # worker pool
    # ------------------------------------------------------------------

    def _execute_job(self, spec) -> dict:
        """Default per-job execution: dispatch on the submitted type.

        The queue carries both single :class:`PredictSpec`\\ s and whole
        :class:`~repro.core.stages.campaign.Campaign`\\ s; the worker
        pool, single-flight coalescing and drain semantics are shared.
        """
        from ..core.stages.campaign import Campaign

        if isinstance(spec, Campaign):
            return self.service_runner.execute_campaign(spec, stats=self.stats)
        return self.service_runner.execute(spec, stats=self.stats)

    def _start_workers(self) -> None:
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"zatel-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._worker_threads.append(thread)

    def _worker_loop(self) -> None:
        queue = self.queue
        while True:
            job = queue.next(timeout=0.2)
            if job is None:
                if queue.closed:
                    return
                continue
            self.stats.observe("queue_seconds", job.queue_seconds())
            try:
                payload = self._executor_fn(job.spec)
            except Exception as error:  # noqa: BLE001 - job isolation boundary
                logger.warning("job %s failed: %s", job.id, error)
                self.stats.failed += 1
                queue.complete(job, error=error)
            else:
                if self.cache is not None:
                    self.cache.put(job.key, payload)
                self.stats.completed += 1
                queue.complete(job, result=payload)
                total = job.total_seconds()
                if total is not None:
                    self.stats.observe("total_seconds", total)

    # ------------------------------------------------------------------
    # HTTP front-end
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query, headers, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=READ_TIMEOUT
                )
            except asyncio.TimeoutError:
                return
            except _HttpError as error:
                await self._respond(writer, error.status, {"error": str(error)})
                return
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            status, payload, extra_headers = await self._route(
                method, path, body, query
            )
            await self._respond(writer, status, payload, extra_headers)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, str, dict[str, str], bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if method == "POST":
            raw_length = headers.get("content-length")
            if raw_length is None:
                raise _HttpError(411, "POST requires a Content-Length header")
            try:
                length = int(raw_length)
            except ValueError:
                raise _HttpError(
                    400, f"invalid Content-Length {raw_length!r}"
                ) from None
            if length > MAX_BODY_BYTES:
                raise _HttpError(
                    413, f"request body exceeds {MAX_BODY_BYTES} bytes"
                )
            body = await reader.readexactly(length)
        path, _, query = target.partition("?")
        return method, path, query, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | RawBody,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        if isinstance(payload, RawBody):
            body, content_type = payload.body, payload.content_type
        else:
            body = json.dumps(payload, sort_keys=True).encode()
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes, query: str = ""
    ) -> tuple[int, dict | RawBody, dict[str, str] | None]:
        self.stats.requests += 1
        if self.dashboard.handles(path):
            status, payload = self.dashboard.route(method, path, query)
            return status, payload, None
        if path == "/predict":
            if method != "POST":
                return 405, {"error": "use POST /predict"}, None
            return await self._handle_predict(body)
        if path == "/campaigns":
            if method != "POST":
                return 405, {"error": "use POST /campaigns"}, None
            return await self._handle_campaign(body)
        if method != "GET":
            return 405, {"error": f"{method} not supported on {path}"}, None
        if path == "/healthz":
            return 200, self._health_payload(), None
        if path == "/readyz":
            return self._handle_ready()
        if path == "/metrics":
            return 200, self._metrics_payload(), None
        if path.startswith("/jobs/"):
            return self._handle_job(path[len("/jobs/"):])
        if path.startswith("/campaigns/"):
            # Campaign jobs live in the same tracked-job table.
            return self._handle_job(path[len("/campaigns/"):])
        return 404, {"error": f"unknown path {path!r}"}, None

    async def _handle_predict(
        self, body: bytes
    ) -> tuple[int, dict, dict[str, str] | None]:
        try:
            payload = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self.stats.invalid += 1
            return 400, {"error": f"request body is not valid JSON: {error}"}, None
        try:
            spec, wait = parse_predict_payload(payload)
        except ValueError as error:
            self.stats.invalid += 1
            return 400, {"error": str(error)}, None
        self.stats.predicts += 1
        key = self.service_runner.fingerprint(spec)
        return await self._submit(key, spec, wait)

    async def _handle_campaign(
        self, body: bytes
    ) -> tuple[int, dict, dict[str, str] | None]:
        try:
            payload = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self.stats.invalid += 1
            return 400, {"error": f"request body is not valid JSON: {error}"}, None
        try:
            campaign, wait = parse_campaign_payload(payload)
        except ValueError as error:
            self.stats.invalid += 1
            return 400, {"error": str(error)}, None
        self.stats.campaigns += 1
        key = self.service_runner.campaign_fingerprint(campaign)
        return await self._submit(key, campaign, wait)

    async def _submit(
        self, key: str, spec, wait: bool
    ) -> tuple[int, dict, dict[str, str] | None]:
        """Shared result-cache -> single-flight-queue -> wait tail of
        ``POST /predict`` and ``POST /campaigns``."""
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                return 200, {**cached, "cached": True, "coalesced": False}, None

        try:
            job, created = self.queue.submit(key, spec)
        except QueueClosedError:
            return 503, {"error": "service is shutting down"}, None
        except QueueFullError as error:
            self.stats.rejected += 1
            return (
                429,
                {"error": str(error), "retry_after": error.retry_after},
                {"Retry-After": f"{error.retry_after:g}"},
            )
        if not created:
            self.stats.coalesced += 1
        depth = self.queue.depth
        if depth > self.stats.queue_peak:
            self.stats.queue_peak = depth
        self._remember(job)

        if not wait:
            return 202, {**job.describe(), "cached": False}, None
        finished = await asyncio.to_thread(job.wait, self.wait_timeout)
        if not finished:
            return (
                504,
                {
                    **job.describe(),
                    "error": (
                        f"prediction still running after {self.wait_timeout:g}s; "
                        f"poll GET /jobs/{job.id}"
                    ),
                },
                None,
            )
        if job.status == JOB_DONE:
            return (
                200,
                {**job.result, "cached": False, "coalesced": not created,
                 "job": job.id},
                None,
            )
        return 500, {**job.describe()}, None

    def _handle_job(self, job_id: str) -> tuple[int, dict, None]:
        with self._jobs_lock:
            job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}, None
        payload = job.describe()
        if job.status == JOB_DONE:
            payload["result"] = job.result
        return 200, payload, None

    def _remember(self, job) -> None:
        """Track the job for ``/jobs/<id>``, evicting old finished ones."""
        with self._jobs_lock:
            self.jobs[job.id] = job
            while len(self.jobs) > self.job_history:
                for job_id, tracked in self.jobs.items():
                    if tracked.finished:
                        del self.jobs[job_id]
                        break
                else:
                    break  # everything in flight: allow temporary growth

    # ------------------------------------------------------------------
    # observability payloads
    # ------------------------------------------------------------------

    def _handle_ready(self) -> tuple[int, dict, None]:
        """``GET /readyz``: readiness, as opposed to ``/healthz`` liveness.

        Liveness answers "is the process up?" — always 200 while
        serving, so orchestrators do not restart a merely-busy service.
        Readiness answers "should this instance receive traffic *now*?"
        — 503 with machine-readable reasons while the queue is saturated
        or the fleet is below its worker quorum, so load balancers can
        route around a struggling instance without killing it.
        """
        reasons: list[str] = []
        if self.queue.closed:
            reasons.append("shutting_down: the service is draining")
        elif self.queue.depth >= self.queue.capacity:
            reasons.append(
                f"queue_saturated: {self.queue.depth}/{self.queue.capacity} "
                "jobs queued + running; new predicts would be rejected"
            )
        if self.fleet is not None and self.fleet.below_quorum():
            reasons.append(
                f"fleet_below_quorum: {self.fleet.live_workers()} live "
                f"worker(s) < quorum {self.fleet.policy.min_workers}"
            )
        if reasons:
            return 503, {"status": "unavailable", "reasons": reasons}, None
        return 200, {"status": "ready", "reasons": []}, None

    def _health_payload(self) -> dict:
        payload = {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self._start_time, 3),
            "workers": self.num_workers,
            "queue_depth": self.queue.depth,
            "cache": self.cache is not None,
        }
        if self.fleet is not None:
            payload["fleet"] = self.fleet.fleet_view()
        return payload

    def _metrics_payload(self) -> dict:
        store_stats = self.service_runner.runner.store.stats
        edges = [
            None if edge == float("inf") else edge
            for edge in SERVICE_LATENCY_EDGES
        ]
        return {
            "counters": self.bus.counters(),
            "derived": {"service.cache_hit_rate": self.stats.cache_hit_rate},
            "histograms": {
                f"service.{name}": {"edges": edges, "counts": counts}
                for name, counts in self.stats.histograms().items()
            },
            "queue": {
                "depth": self.queue.depth,
                "queued": self.queue.queued,
                "running": self.queue.running,
                "capacity": self.queue.capacity,
                "closed": self.queue.closed,
            },
            "store": {
                "memory_hits": store_stats.memory_hits,
                "disk_hits": store_stats.disk_hits,
                "misses": store_stats.misses,
                "writes": store_stats.writes,
                "corrupt": store_stats.corrupt,
            },
            "uptime_seconds": round(time.monotonic() - self._start_time, 3),
            **(
                {"fleet": self.fleet.fleet_view()}
                if self.fleet is not None
                else {}
            ),
        }

    # ------------------------------------------------------------------
    # dashboard source (consumed by service.dashboard.DashboardRouter)
    # ------------------------------------------------------------------

    def _record_trace(self, label: str, events, total_cycles, deltas) -> None:
        """Timeline sink: keep a served prediction's telemetry.

        Called by :class:`ServiceRunner` from worker threads after each
        instrumented prediction; the ring holds the most recent
        ``trace_history`` captures for ``/api/timeline``.
        """
        with self._traces_lock:
            self._trace_counter += 1
            trace_id = f"t{self._trace_counter}"
            self._traces[trace_id] = {
                "id": trace_id,
                "label": label,
                "cycles": total_cycles,
                "events": events,
                "deltas": deltas,
            }
            while len(self._traces) > self.trace_history:
                self._traces.popitem(last=False)

    def timeline_traces(self) -> list[dict]:
        with self._traces_lock:
            return [
                {
                    "id": trace["id"],
                    "label": trace["label"],
                    "cycles": trace["cycles"],
                    "events": len(trace["events"]),
                }
                for trace in self._traces.values()
            ]

    def timeline_trace(self, trace_id: str | None):
        with self._traces_lock:
            if not self._traces:
                return None
            if trace_id is None:
                trace = next(reversed(self._traces.values()))
            else:
                trace = self._traces.get(trace_id)
                if trace is None:
                    return None
            return trace["events"], trace["cycles"], trace["deltas"]

    def metrics_view(self) -> dict:
        """``/api/metrics``: the telemetry bus, structured per component."""
        flat = self._metrics_payload()
        return {
            "mode": "service",
            "counters": structure_counters(flat["counters"]),
            "derived": {
                "cache_hit_rate": self.stats.cache_hit_rate,
            },
            "histograms": histogram_views(self.stats.histograms()),
            "queue": flat["queue"],
            "store": flat["store"],
            "uptime_seconds": flat["uptime_seconds"],
        }

    def fleet_view(self) -> dict | None:
        """``/api/fleet``: lease states plus the failover counters."""
        if self.fleet is None:
            return None
        view = self.fleet.fleet_view()
        stats = self.fleet.stats
        view["counters"] = {
            "redispatches": stats.redispatches,
            "workers_ejected": stats.workers_ejected,
            "workers_lost": stats.workers_lost,
            "leases_expired": stats.leases_expired,
            "results_corrupt": stats.results_corrupt,
        }
        return view

    def jobs_view(self) -> dict:
        with self._jobs_lock:
            described = [job.describe() for job in self.jobs.values()]
        return {
            "jobs": described,
            "tracked": len(described),
            "queue": {
                "depth": self.queue.depth,
                "queued": self.queue.queued,
                "running": self.queue.running,
                "capacity": self.queue.capacity,
            },
        }

    def campaigns_view(self) -> dict:
        """``/api/campaigns``: campaign jobs with per-point QC verdicts."""
        from ..core.stages.campaign import Campaign

        with self._jobs_lock:
            jobs = [
                (job, job.result)
                for job in self.jobs.values()
                if isinstance(job.spec, Campaign)
            ]
        campaigns = []
        for job, result in jobs:
            entry = job.describe()
            if result is not None:
                entry["campaign"] = result.get("campaign")
                entry["succeeded"] = result.get("succeeded")
                entry["points"] = [
                    {
                        "point": point.get("point"),
                        "verdict": point.get("verdict"),
                        "violations": point.get("violations", []),
                    }
                    for point in result.get("points", [])
                ]
            campaigns.append(entry)
        return {
            "campaigns": campaigns,
            "executed_points": self.stats.campaign_points,
            "accepted": self.stats.campaigns,
        }


class _HttpError(Exception):
    """Protocol-level failure mapped straight to an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
