"""The observability dashboard: ``GET /dashboard`` + the ``/api/*`` JSON views.

One stdlib-only module gives the service (and the offline trace
explorer) a browser surface over everything PRs 4-9 made observable:

* ``GET /dashboard`` — a single static HTML/JS page (no external
  assets, no frameworks — the service layer's stdlib-only rule applies
  to the browser side too) rendering canvas timeline lanes, live
  stat tiles and the fleet lease table;
* ``GET /api/timeline`` — coalesced ``.zperf`` windows through the
  shared :mod:`repro.viz.timeline_model`, with lane filtering,
  time-range slicing and ``next_start`` pagination;
* ``GET /api/metrics`` — a *structured* view over the telemetry bus
  (counters nested per component, derived rates, latency histograms)
  instead of ``/metrics``' literal flat dump;
* ``GET /api/fleet`` / ``/api/jobs`` / ``/api/campaigns`` — lease
  states and breaker ejections, queue depth, per-point QC verdicts.

The router is transport-agnostic: :class:`ZatelService` calls it from
its asyncio front-end, and :func:`make_trace_server` mounts the same
router on a ``ThreadingHTTPServer`` so ``zatel trace --serve file.zperf``
explores an offline trace with no service at all.  Both sides feed it a
*source* object (duck-typed, see :class:`TraceSource` for the offline
one) so the route logic exists exactly once.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, NamedTuple
from urllib.parse import parse_qsl

from ..gpu.telemetry import (
    SERVICE_LATENCY_EDGES,
    downsample_events,
    load_zperf,
    slice_events,
)
from ..viz.timeline_model import activity_series, lanes_payload

__all__ = [
    "DASHBOARD_MARKER",
    "RawBody",
    "DashboardRouter",
    "TraceSource",
    "structure_counters",
    "parse_timeline_query",
    "timeline_payload",
    "make_trace_server",
    "serve_trace",
]

#: Marker the smoke test greps for in the served page.
DASHBOARD_MARKER = 'id="zatel-dashboard"'

#: Hard ceiling on windows per timeline response, so one request can
#: never serialize an unbounded trace; clients page via ``next_start``.
MAX_TIMELINE_WINDOWS = 5000


class RawBody(NamedTuple):
    """A non-JSON response body (the dashboard page itself)."""

    body: bytes
    content_type: str


class QueryError(ValueError):
    """A malformed query parameter; maps to a 400."""


def _float_param(params: dict[str, str], name: str) -> float | None:
    raw = params.get(name)
    if raw is None or raw == "":
        return None
    try:
        value = float(raw)
    except ValueError:
        raise QueryError(f"query parameter {name}={raw!r} is not a number")
    return value


def _int_param(params: dict[str, str], name: str) -> int | None:
    raw = params.get(name)
    if raw is None or raw == "":
        return None
    try:
        value = int(raw)
    except ValueError:
        raise QueryError(f"query parameter {name}={raw!r} is not an integer")
    if value <= 0:
        raise QueryError(f"query parameter {name} must be positive, got {value}")
    return value


def parse_timeline_query(query: str) -> dict[str, Any]:
    """Validate ``/api/timeline`` query parameters.

    Returns ``{trace, start, end, lanes, max_windows, max_per_lane}``
    with ``None`` for absent parameters.

    Raises:
        QueryError: on non-numeric ``start``/``end``, negative ``start``,
            ``end <= start``, non-positive limits, or unknown parameters.
    """
    params: dict[str, str] = {}
    for name, value in parse_qsl(query, keep_blank_values=True):
        params[name] = value
    known = {"trace", "start", "end", "lanes", "max_windows", "max_per_lane"}
    unknown = sorted(set(params) - known)
    if unknown:
        raise QueryError(
            f"unknown query parameter(s) {unknown}; known: {sorted(known)}"
        )
    start = _float_param(params, "start")
    end = _float_param(params, "end")
    if start is not None and start < 0:
        raise QueryError(f"start must be >= 0, got {start:g}")
    if end is not None and end <= (start or 0.0):
        raise QueryError(
            f"end ({end:g}) must be greater than start ({start or 0.0:g})"
        )
    lanes_raw = params.get("lanes", "")
    lanes = [part.strip() for part in lanes_raw.split(",") if part.strip()]
    return {
        "trace": params.get("trace"),
        "start": start,
        "end": end,
        "lanes": lanes or None,
        "max_windows": _int_param(params, "max_windows"),
        "max_per_lane": _int_param(params, "max_per_lane"),
    }


def _lane_matches(component: str, kind: str, filters: list[str]) -> bool:
    """Whether a lane passes the ``lanes=`` filter list.

    A filter hits on the exact ``component:kind`` pair, on the bare
    window kind (``issue_stall`` selects it across every SM), or as a
    component prefix (``g0.`` selects one shard's lanes, ``dram`` every
    channel).
    """
    for item in filters:
        if item == f"{component}:{kind}" or item == kind:
            return True
        if component.startswith(item):
            return True
    return False


def _paginate(
    events: list[dict], max_windows: int
) -> tuple[list[dict], float | None]:
    """Cut a time-sorted event list at a window-start boundary.

    The page holds at most ``max_windows`` events unless more events
    than that *share* one start cycle — then the whole co-started batch
    is returned so ``next_start`` always advances and a paging client
    can never loop.  ``next_start`` is the cycle to pass as ``start`` on
    the next request (``None`` when this page is the last).
    """
    if len(events) <= max_windows:
        return events, None
    cut = events[max_windows]["start"]
    page = [event for event in events if event["start"] < cut]
    if page:
        return page, cut
    page = [event for event in events if event["start"] == cut]
    later = [event["start"] for event in events if event["start"] > cut]
    return page, later[0] if later else None


def timeline_payload(
    events,
    total_cycles: float,
    query: dict[str, Any],
    deltas: list[dict] | None = None,
) -> dict:
    """The ``/api/timeline`` response body for one trace.

    Applies the validated ``query`` (see :func:`parse_timeline_query`):
    time-range slice, lane filter, global ``max_windows`` pagination
    (cut at a window-start boundary, ``next_start`` resumes), then
    per-lane downsampling — in that order, so pagination counts the
    windows the client actually receives.  Lane grouping/ordering comes
    from :func:`repro.viz.timeline_model.lanes_payload`, the same model
    the terminal renderer draws from.
    """
    start = query.get("start") or 0.0
    end = query.get("end")
    sliced = slice_events(events, start=start, end=end)
    filters = query.get("lanes")
    if filters:
        sliced = [
            event
            for event in sliced
            if _lane_matches(event["component"], event["kind"], filters)
        ]
    max_windows = min(
        query.get("max_windows") or MAX_TIMELINE_WINDOWS, MAX_TIMELINE_WINDOWS
    )
    page, next_start = _paginate(sliced, max_windows)
    max_per_lane = query.get("max_per_lane")
    if max_per_lane:
        page = downsample_events(page, max_per_lane)
    payload = lanes_payload(page, total_cycles)
    payload["range"] = {"start": start, "end": end}
    payload["window_count"] = len(page)
    payload["next_start"] = next_start
    if deltas is not None:
        payload["activity"] = [
            {"label": label, "series": series, "total": sum(series)}
            for label, series in activity_series(deltas)
            if any(series)
        ]
    return payload


def structure_counters(counters: dict[str, float]) -> dict[str, dict[str, float]]:
    """Nest flat ``component.statistic`` counters per component.

    ``{"service.requests": 3, "fleet.heartbeats": 9}`` becomes
    ``{"service": {"requests": 3}, "fleet": {"heartbeats": 9}}`` — the
    structured shape ``/api/metrics`` serves in place of ``/metrics``'
    literal flat dump.
    """
    nested: dict[str, dict[str, float]] = {}
    for name, value in counters.items():
        component, _, statistic = name.rpartition(".")
        nested.setdefault(component or statistic, {})[statistic] = value
    return nested


def histogram_views(histograms: dict[str, list[int]]) -> dict[str, dict]:
    """Latency histograms with their bucket edges, JSON-ready."""
    edges = [
        None if edge == float("inf") else edge
        for edge in SERVICE_LATENCY_EDGES
    ]
    return {
        name: {"edges": edges, "counts": list(counts), "total": sum(counts)}
        for name, counts in histograms.items()
    }


# ----------------------------------------------------------------------
# the router
# ----------------------------------------------------------------------


class DashboardRouter:
    """Maps dashboard paths to responses against a duck-typed source.

    The source provides whichever of these it can:

    * ``timeline_traces() -> list[dict]`` — available trace summaries,
      newest last (each ``{"id", "label", "cycles", "events"}``);
    * ``timeline_trace(trace_id | None) -> tuple | None`` — one trace as
      ``(events, total_cycles, deltas | None)``; ``None`` id means the
      newest;
    * ``metrics_view() -> dict``, ``fleet_view() -> dict | None``,
      ``jobs_view() -> dict``, ``campaigns_view() -> dict``.

    Missing capabilities (an offline trace has no fleet) answer 404
    with a machine-readable error, so one page serves both modes.
    ``stats`` (optional) is a :class:`~repro.gpu.telemetry.ServiceStats`
    receiving ``dashboard_hits`` / ``api_hits``.
    """

    def __init__(self, source, stats=None) -> None:
        self.source = source
        self.stats = stats

    def handles(self, path: str) -> bool:
        return path == "/dashboard" or path.startswith("/api/")

    def route(self, method: str, path: str, query: str = "") -> tuple[int, Any]:
        """Handle one request; payloads are JSON dicts or a RawBody."""
        if method != "GET":
            return 405, {"error": f"{method} not supported on {path}"}
        if path == "/dashboard":
            if self.stats is not None:
                self.stats.dashboard_hits += 1
            return 200, RawBody(
                DASHBOARD_HTML.encode(), "text/html; charset=utf-8"
            )
        if self.stats is not None:
            self.stats.api_hits += 1
        if path == "/api/timeline":
            return self._timeline(query)
        if path == "/api/metrics":
            return self._view("metrics_view", "metrics")
        if path == "/api/fleet":
            return self._view("fleet_view", "fleet")
        if path == "/api/jobs":
            return self._view("jobs_view", "jobs")
        if path == "/api/campaigns":
            return self._view("campaigns_view", "campaigns")
        return 404, {"error": f"unknown API path {path!r}"}

    def _timeline(self, query: str) -> tuple[int, Any]:
        try:
            parsed = parse_timeline_query(query)
        except QueryError as error:
            return 400, {"error": str(error)}
        trace = self.source.timeline_trace(parsed["trace"])
        if trace is None:
            available = [t["id"] for t in self.source.timeline_traces()]
            return 404, {
                "error": (
                    f"no timeline trace {parsed['trace']!r} available"
                    if parsed["trace"]
                    else "no timeline traces captured yet; run a predict "
                    "with telemetry enabled"
                ),
                "traces": available,
            }
        events, total_cycles, deltas = trace
        payload = timeline_payload(events, total_cycles, parsed, deltas)
        payload["trace"] = parsed["trace"] or (
            self.source.timeline_traces()[-1]["id"]
            if self.source.timeline_traces()
            else None
        )
        payload["traces"] = self.source.timeline_traces()
        return 200, payload

    def _view(self, attr: str, label: str) -> tuple[int, Any]:
        view_fn = getattr(self.source, attr, None)
        view = view_fn() if view_fn is not None else None
        if view is None:
            return 404, {"error": f"no {label} view available in this mode"}
        return 200, view


# ----------------------------------------------------------------------
# offline mode: explore a .zperf file with no service running
# ----------------------------------------------------------------------


class TraceSource:
    """A parsed ``.zperf`` file as a dashboard source (offline mode)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.data = load_zperf(self.path)

    def timeline_traces(self) -> list[dict]:
        header = self.data["header"]
        return [
            {
                "id": self.path.name,
                "label": f"{self.path.name} ({header.get('config', '?')})",
                "cycles": header.get("cycles", 0.0),
                "events": len(self.data["events"]),
            }
        ]

    def timeline_trace(self, trace_id: str | None):
        if trace_id is not None and trace_id != self.path.name:
            return None
        return (
            self.data["events"],
            float(self.data["header"].get("cycles", 0.0)),
            [row["d"] for row in self.data["intervals"]],
        )

    def metrics_view(self) -> dict:
        summary = self.data["summary"]
        return {
            "mode": "trace",
            "trace": self.path.name,
            "header": self.data["header"],
            "counters": structure_counters(summary.get("counters", {})),
            "metrics": summary.get("metrics", {}),
        }

    def fleet_view(self) -> None:
        return None

    def jobs_view(self) -> None:
        return None

    def campaigns_view(self) -> None:
        return None


class _TraceHandler(BaseHTTPRequestHandler):
    """Serves a DashboardRouter from a ThreadingHTTPServer (offline)."""

    router: DashboardRouter  # set on the subclass by make_trace_server
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path, _, query = self.path.partition("?")
        if path == "/":
            self.send_response(302)
            self.send_header("Location", "/dashboard")
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        if not self.router.handles(path):
            status, payload = 404, {"error": f"unknown path {path!r}"}
        else:
            status, payload = self.router.route("GET", path, query)
        if isinstance(payload, RawBody):
            body, content_type = payload.body, payload.content_type
        else:
            body = json.dumps(payload, sort_keys=True).encode()
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # quiet: the CLI prints the one line that matters


def make_trace_server(
    path: str | Path, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server exploring one ``.zperf`` offline.

    Binds immediately (``port=0`` picks an ephemeral port; read the real
    one off ``server.server_address``) but does not serve until the
    caller runs ``serve_forever()`` — tests drive it from a thread.
    """
    router = DashboardRouter(TraceSource(path))
    handler = type("TraceHandler", (_TraceHandler,), {"router": router})
    return ThreadingHTTPServer((host, port), handler)


def serve_trace(path: str | Path, host: str = "127.0.0.1", port: int = 0) -> None:
    """Blocking entry point of ``zatel trace --serve``: serve until ^C."""
    from .protocol import format_ready_line

    server = make_trace_server(path, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(format_ready_line(str(bound_host), int(bound_port)), flush=True)
    print(
        f"exploring {Path(path).name} at "
        f"http://{bound_host}:{bound_port}/dashboard (Ctrl-C to stop)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


# ----------------------------------------------------------------------
# the page (inline: one file, zero assets, zero dependencies)
# ----------------------------------------------------------------------

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>zatel dashboard</title>
<style>
  :root { color-scheme: dark; }
  body { margin: 0; background: #0d1117; color: #c9d1d9;
         font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace; }
  main#zatel-dashboard { max-width: 1180px; margin: 0 auto; padding: 16px; }
  h1 { font-size: 16px; color: #e6edf3; margin: 4px 0 12px; }
  h2 { font-size: 13px; color: #8b949e; text-transform: uppercase;
       letter-spacing: .08em; margin: 20px 0 8px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 10px; }
  .tile { background: #161b22; border: 1px solid #30363d; border-radius: 6px;
          padding: 10px 14px; min-width: 128px; }
  .tile .v { font-size: 20px; color: #e6edf3; }
  .tile .k { color: #8b949e; font-size: 11px; }
  canvas { background: #161b22; border: 1px solid #30363d; border-radius: 6px;
           width: 100%; display: block; }
  table { border-collapse: collapse; width: 100%; background: #161b22;
          border: 1px solid #30363d; border-radius: 6px; }
  th, td { text-align: left; padding: 5px 10px; border-bottom: 1px solid #21262d; }
  th { color: #8b949e; font-weight: normal; }
  .state-live { color: #3fb950; } .state-dead, .state-ejected { color: #f85149; }
  #status { color: #8b949e; font-size: 11px; }
  .muted { color: #484f58; }
</style>
</head>
<body>
<main id="zatel-dashboard">
  <h1>zatel dashboard <span id="status"></span></h1>
  <section><h2>Service</h2><div class="tiles" id="tiles"></div></section>
  <section><h2>Timeline lanes</h2>
    <canvas id="timeline" height="320"></canvas>
    <div id="timeline-note" class="muted"></div></section>
  <section><h2>Fleet</h2><div id="fleet"></div></section>
  <section><h2>Jobs</h2><div id="jobs"></div></section>
</main>
<script>
"use strict";
const LANE_COLORS = {
  issue_stall: "#f85149", busy: "#3fb950", wait: "#d29922",
  bank_contention: "#bc8cff", queue_contention: "#58a6ff",
};
const $ = (id) => document.getElementById(id);
async function getJSON(path) {
  const res = await fetch(path);
  const body = await res.json().catch(() => ({}));
  return { ok: res.ok, status: res.status, body };
}
function tile(label, value) {
  return `<div class="tile"><div class="v">${value}</div>` +
         `<div class="k">${label}</div></div>`;
}
function fmt(x) {
  if (x === null || x === undefined) return "–";
  if (typeof x !== "number") return String(x);
  return x >= 1000 ? x.toLocaleString("en-US") : String(Math.round(x * 1000) / 1000);
}
async function refreshMetrics() {
  const { ok, body } = await getJSON("/api/metrics");
  if (!ok) { $("tiles").innerHTML = tile("metrics", "offline trace"); return; }
  const svc = (body.counters && body.counters.service) || {};
  const q = body.queue || {};
  const tiles = [
    tile("requests", fmt(svc.requests)),
    tile("predicts", fmt(svc.predicts)),
    tile("queue depth", `${fmt(q.depth)} / ${fmt(q.capacity)}`),
    tile("cache hit rate", body.derived && body.derived.cache_hit_rate !== undefined
         ? (100 * body.derived.cache_hit_rate).toFixed(1) + "%" : "–"),
    tile("coalesced", fmt(svc.coalesced)),
    tile("failed", fmt(svc.failed)),
    tile("uptime", fmt(body.uptime_seconds) + " s"),
  ];
  $("tiles").innerHTML = tiles.join("");
}
function drawTimeline(data) {
  const canvas = $("timeline");
  const dpr = window.devicePixelRatio || 1;
  const cssWidth = canvas.clientWidth || 1100;
  const laneH = 18, labelW = 230, top = 8;
  const lanes = data.lanes || [];
  canvas.height = (top * 2 + Math.max(1, lanes.length) * laneH) * dpr;
  canvas.width = cssWidth * dpr;
  const ctx = canvas.getContext("2d");
  ctx.scale(dpr, dpr);
  ctx.clearRect(0, 0, cssWidth, canvas.height);
  const total = data.total_cycles || 1;
  const plotW = cssWidth - labelW - 70;
  ctx.font = "11px ui-monospace, monospace";
  lanes.forEach((lane, i) => {
    const y = top + i * laneH;
    ctx.fillStyle = "#8b949e";
    const label = lane.component + " " + lane.kind;
    ctx.fillText(label.length > 34 ? label.slice(0, 33) + "…" : label, 6, y + 12);
    ctx.fillStyle = "#21262d";
    ctx.fillRect(labelW, y + 3, plotW, laneH - 7);
    ctx.fillStyle = LANE_COLORS[lane.kind] || "#58a6ff";
    for (const [s, e] of lane.windows) {
      const x = labelW + (s / total) * plotW;
      const w = Math.max(1, ((e - s) / total) * plotW);
      ctx.fillRect(x, y + 3, w, laneH - 7);
    }
    ctx.fillStyle = "#8b949e";
    ctx.fillText((100 * lane.busy_fraction).toFixed(1) + "%",
                 labelW + plotW + 8, y + 12);
  });
}
async function refreshTimeline() {
  const { ok, body } = await getJSON("/api/timeline?max_per_lane=400");
  if (!ok) {
    $("timeline-note").textContent =
      body.error || "no timeline captured yet";
    return;
  }
  drawTimeline(body);
  $("timeline-note").textContent =
    `trace ${body.trace} · ${fmt(body.total_cycles)} cycles · ` +
    `${body.lane_count} lanes · ${body.window_count} windows` +
    (body.next_start !== null ? ` · paged (next_start=${body.next_start})` : "");
}
function fleetTable(view) {
  const rows = (view.workers || []).map((w) =>
    `<tr><td>${w.id}</td><td class="state-${w.state}">${w.state}</td>` +
    `<td>${fmt(w.pid)}</td><td>${fmt(w.completed)}</td>` +
    `<td>${fmt(w.consecutive_failures)}</td>` +
    `<td>${fmt(w.heartbeat_age_seconds)} s</td></tr>`).join("");
  const l = view.leases || {};
  return `<table><tr><th>worker</th><th>state</th><th>pid</th>` +
    `<th>completed</th><th>consec. failures</th><th>heartbeat age</th></tr>` +
    `${rows}</table><p>live ${view.live_workers}/${view.quorum} quorum · ` +
    `leases active ${fmt(l.active)} (pending ${fmt(l.pending)}, ` +
    `assigned ${fmt(l.assigned)})${view.draining ? " · DRAINING" : ""}</p>`;
}
async function refreshFleet() {
  const { ok, body } = await getJSON("/api/fleet");
  $("fleet").innerHTML = ok ? fleetTable(body)
    : `<p class="muted">${body.error || "no fleet"}</p>`;
}
async function refreshJobs() {
  const { ok, body } = await getJSON("/api/jobs");
  if (!ok) { $("jobs").innerHTML = `<p class="muted">${body.error}</p>`; return; }
  const rows = (body.jobs || []).slice(-12).reverse().map((j) =>
    `<tr><td>${j.job}</td><td>${j.status}</td>` +
    `<td>${fmt(j.queue_seconds)} s</td><td>${fmt(j.total_seconds)} s</td>` +
    `<td>${j.error || ""}</td></tr>`).join("");
  $("jobs").innerHTML =
    `<table><tr><th>job</th><th>status</th><th>queued</th>` +
    `<th>total</th><th>error</th></tr>${rows}</table>` +
    `<p>depth ${fmt(body.queue && body.queue.depth)} · ` +
    `tracked ${fmt(body.tracked)}</p>`;
}
async function tick() {
  try {
    await Promise.all([refreshMetrics(), refreshTimeline(),
                       refreshFleet(), refreshJobs()]);
    $("status").textContent = "· live " + new Date().toLocaleTimeString();
  } catch (err) {
    $("status").textContent = "· unreachable (" + err + ")";
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"""
