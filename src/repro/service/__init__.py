"""The Zatel prediction service: an always-on HTTP front-end.

Turns the batch-only reproduction into a long-running server
(``zatel serve``) that amortizes simulator startup, deduplicates
identical in-flight requests, and serves repeated predictions from a
fingerprint-keyed result cache in milliseconds:

* :mod:`.protocol` — request/response JSON schemas and validation;
* :mod:`.queue` — bounded job queue with single-flight coalescing and
  backpressure (429 + ``Retry-After`` when full);
* :mod:`.cache` — result cache layered on the content-addressed
  artifact store;
* :mod:`.server` — the asyncio HTTP front-end plus the worker pool that
  drives the stage graph through the fault-tolerant executor.

Everything is stdlib-only (``asyncio`` streams, hand-rolled HTTP/1.1):
the service adds no dependencies beyond what the simulator needs.
"""

from .cache import ResultCache
from .protocol import parse_predict_payload
from .queue import Job, JobQueue, QueueClosedError, QueueFullError
from .server import ZatelService

__all__ = [
    "Job",
    "JobQueue",
    "QueueClosedError",
    "QueueFullError",
    "ResultCache",
    "ZatelService",
    "parse_predict_payload",
]
