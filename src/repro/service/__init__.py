"""The Zatel prediction service: an always-on HTTP front-end.

Turns the batch-only reproduction into a long-running server
(``zatel serve``) that amortizes simulator startup, deduplicates
identical in-flight requests, and serves repeated predictions from a
fingerprint-keyed result cache in milliseconds:

* :mod:`.protocol` — request/response JSON schemas and validation;
* :mod:`.queue` — bounded job queue with single-flight coalescing and
  backpressure (429 + ``Retry-After`` when full);
* :mod:`.cache` — result cache layered on the content-addressed
  artifact store;
* :mod:`.server` — the asyncio HTTP front-end plus the worker pool that
  drives the stage graph through the fault-tolerant executor;
* :mod:`.dashboard` — the ``GET /dashboard`` page and ``/api/*`` JSON
  views (timeline lanes, structured metrics, fleet leases), shared
  between the live service and ``zatel trace --serve`` offline mode.

Everything is stdlib-only (``asyncio`` streams, hand-rolled HTTP/1.1):
the service adds no dependencies beyond what the simulator needs.
"""

from .cache import ResultCache
from .dashboard import DashboardRouter, TraceSource, make_trace_server, serve_trace
from .protocol import (
    READY_PREFIX,
    format_ready_line,
    parse_predict_payload,
    parse_ready_line,
)
from .queue import Job, JobQueue, QueueClosedError, QueueFullError
from .server import ZatelService

__all__ = [
    "DashboardRouter",
    "Job",
    "JobQueue",
    "QueueClosedError",
    "QueueFullError",
    "READY_PREFIX",
    "ResultCache",
    "TraceSource",
    "ZatelService",
    "format_ready_line",
    "make_trace_server",
    "parse_predict_payload",
    "parse_ready_line",
    "serve_trace",
]
