"""Tests for the warp-scheduler policies (Table II: greedy-then-oldest)."""

import dataclasses

import pytest

from repro.gpu import MOBILE_SOC, CycleSimulator, GPUConfig, compile_kernel


class TestConfigValidation:
    def test_gto_is_default(self):
        assert MOBILE_SOC.warp_scheduler == "gto"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(MOBILE_SOC, warp_scheduler="fifo")

    def test_lrr_accepted(self):
        cfg = dataclasses.replace(MOBILE_SOC, warp_scheduler="lrr")
        assert cfg.warp_scheduler == "lrr"


class TestSchedulerBehaviour:
    @pytest.fixture(scope="class")
    def warps(self, small_scene, small_settings, small_frame):
        return compile_kernel(
            small_frame, small_settings.all_pixels(), small_scene.addresses
        )

    def test_both_policies_run_to_completion(self, small_scene, warps):
        for policy in ("gto", "lrr"):
            cfg = dataclasses.replace(MOBILE_SOC, warp_scheduler=policy)
            stats = CycleSimulator(cfg, small_scene.addresses).run(warps)
            assert stats.cycles > 0
            assert stats.pixels_traced == sum(w.live_pixels for w in warps)

    def test_policies_conserve_work(self, small_scene, warps):
        results = {}
        for policy in ("gto", "lrr"):
            cfg = dataclasses.replace(MOBILE_SOC, warp_scheduler=policy)
            results[policy] = CycleSimulator(cfg, small_scene.addresses).run(warps)
        # Scheduling changes timing, never the executed work.
        assert results["gto"].instructions == results["lrr"].instructions
        assert (
            results["gto"].rt_traversal_steps
            == results["lrr"].rt_traversal_steps
        )

    def test_policies_schedule_differently(self, small_scene, warps):
        results = {}
        for policy in ("gto", "lrr"):
            cfg = dataclasses.replace(MOBILE_SOC, warp_scheduler=policy)
            results[policy] = CycleSimulator(cfg, small_scene.addresses).run(warps)
        # The interleaving differs, so at least one timing-sensitive
        # statistic must differ (cycles or cache behaviour).
        assert (
            results["gto"].cycles != results["lrr"].cycles
            or results["gto"].l1d_misses != results["lrr"].l1d_misses
        )

    def test_each_policy_deterministic(self, small_scene, warps):
        cfg = dataclasses.replace(MOBILE_SOC, warp_scheduler="lrr")
        sim = CycleSimulator(cfg, small_scene.addresses)
        assert sim.run(warps).cycles == sim.run(warps).cycles
