"""Tests for the LRU caches and MSHR table, including LRU properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import Cache, CacheConfig, MSHRTable, line_of
from repro.gpu.cache import CacheStats


class TestLineOf:
    def test_aligns_down(self):
        assert line_of(0, 128) == 0
        assert line_of(127, 128) == 0
        assert line_of(128, 128) == 128
        assert line_of(300, 128) == 256


class TestCacheStats:
    def test_miss_rate_empty_is_zero(self):
        assert CacheStats().miss_rate == 0.0

    def test_merge(self):
        a = CacheStats(accesses=10, misses=4)
        b = CacheStats(accesses=5, misses=1)
        a.merge(b)
        assert a.accesses == 15 and a.misses == 5
        assert a.hits == 10


def tiny_cache(lines=4, assoc=0):
    """A 4-line cache (fully associative by default) for exact LRU checks."""
    return Cache(CacheConfig(lines * 128, 128, assoc, 20))


class TestCacheLRU:
    def test_first_access_misses_second_hits(self):
        cache = tiny_cache()
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.stats.accesses == 2 and cache.stats.misses == 1

    def test_capacity_eviction_is_lru(self):
        cache = tiny_cache(lines=2)
        cache.access(0)
        cache.access(128)
        cache.access(0)        # 0 is now most recent
        cache.access(256)      # evicts 128
        assert cache.probe(0)
        assert not cache.probe(128)
        assert cache.probe(256)

    def test_set_mapping_isolates_sets(self):
        # 4 lines, 2-way => 2 sets; lines 0 and 256 share set 0.
        cache = tiny_cache(lines=4, assoc=2)
        assert cache.num_sets == 2
        cache.access(0)
        cache.access(256)
        cache.access(512)      # set 0 again: evicts line 0
        assert not cache.probe(0)
        assert cache.probe(256) and cache.probe(512)
        # Set 1 never touched.
        cache.access(128)
        assert cache.probe(128)

    def test_flush_keeps_stats(self):
        cache = tiny_cache()
        cache.access(0)
        cache.flush()
        assert not cache.probe(0)
        assert cache.stats.accesses == 1

    def test_resident_never_exceeds_capacity(self):
        cache = tiny_cache(lines=4)
        for i in range(20):
            cache.access(i * 128)
        assert cache.resident_lines() <= 4

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=200))
    def test_property_small_working_set_always_fits(self, sequence):
        """Accessing <= capacity distinct lines never re-misses a line."""
        cache = tiny_cache(lines=16)
        seen = set()
        for index in sequence:
            addr = index * 128
            hit = cache.access(addr)
            assert hit == (addr in seen)
            seen.add(addr)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300))
    def test_property_miss_count_bounds(self, sequence):
        """Misses are at least the distinct-line count's compulsory share
        and never exceed total accesses."""
        cache = tiny_cache(lines=8)
        for index in sequence:
            cache.access(index * 128)
        distinct = len({i * 128 for i in sequence})
        assert cache.stats.misses >= min(distinct, 8) or distinct <= 8
        assert cache.stats.misses >= (distinct if distinct <= 8 else 8)
        assert cache.stats.misses <= cache.stats.accesses


class TestMSHR:
    def test_validation(self):
        with pytest.raises(ValueError):
            MSHRTable(0)

    def test_merge_returns_pending_completion(self):
        mshr = MSHRTable(4)
        mshr.allocate(0, cycle=10, ready_cycle=200)
        assert mshr.lookup(0, cycle=50) == 200
        assert mshr.merges == 1

    def test_retire_after_completion(self):
        mshr = MSHRTable(4)
        mshr.allocate(0, cycle=10, ready_cycle=100)
        assert mshr.lookup(0, cycle=150) is None  # retired
        assert mshr.outstanding() == 0

    def test_full_table_stalls_allocation(self):
        mshr = MSHRTable(2)
        mshr.allocate(0, cycle=0, ready_cycle=100)
        mshr.allocate(128, cycle=0, ready_cycle=120)
        granted = mshr.allocate(256, cycle=10, ready_cycle=300)
        assert granted >= 100  # waited for the earliest entry
        assert mshr.stall_cycles > 0

    def test_stall_is_capped(self):
        mshr = MSHRTable(1)
        mshr.allocate(0, cycle=0, ready_cycle=10_000)
        granted = mshr.allocate(128, cycle=0, ready_cycle=10_000)
        assert granted - 0 <= MSHRTable.MAX_STALL

    def test_no_stall_when_space(self):
        mshr = MSHRTable(8)
        assert mshr.allocate(0, cycle=5, ready_cycle=50) == 5
