"""Tests for the sweep planner: dedup, counters, outcomes, harness wiring."""

import pytest

from repro.core import SweepPlanner, SweepPoint, ZatelConfig
from repro.core.stages import ArtifactStore
from repro.gpu import MOBILE_SOC, RTX_2060
from repro.harness import Runner


class TestSweepPoint:
    def test_sampling_requires_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            SweepPoint("small", MOBILE_SOC, mode="sampling")
        with pytest.raises(ValueError, match="fraction"):
            SweepPoint("small", MOBILE_SOC, mode="sampling", fraction=1.5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            SweepPoint("small", MOBILE_SOC, mode="bogus")

    def test_describe(self):
        point = SweepPoint("small", MOBILE_SOC, mode="sampling", fraction=0.2)
        assert point.describe() == "small/MobileSoC/sampling@20%"


class TestPerPointDedup:
    def test_two_point_perc_sweep_profiles_once(self, small_scene, small_frame):
        """The Fig 16 experiment shape: one scene, two traced
        percentages.  Profile and quantize must execute exactly once —
        the sweep's headline saving."""
        points = [
            SweepPoint(
                "small", MOBILE_SOC, mode="sampling", fraction=perc / 100.0
            )
            for perc in (20, 40)
        ]
        planner = SweepPlanner()
        result = planner.run(
            points, {"small": small_scene}, {"small": small_frame}
        )
        assert result.succeeded
        assert result.executions_of("profile") == 1
        assert result.executions_of("quantize") == 1
        assert result.executions_of("sampling_simulate") == 2
        # Per-point graphs carry 3 stages each; 2 were planned away.
        assert result.plan.total_nodes == 6
        assert result.plan.unique_nodes == 4
        assert result.plan.deduplicated_nodes == 2
        # Distinct fractions give distinct predictions.
        low, high = (result.value(p) for p in points)
        assert low.fraction == 0.2 and high.fraction == 0.4
        assert low.stats.pixels_traced < high.stats.pixels_traced

    def test_mixed_mode_sweep_shares_profiling(self, small_scene, small_frame):
        """Zatel and the sampling baseline on the same scene share the
        profile/quantize artifacts when their knobs coincide."""
        points = [
            SweepPoint("small", MOBILE_SOC),
            SweepPoint("small", MOBILE_SOC, mode="sampling", fraction=0.3),
        ]
        result = SweepPlanner().run(
            points, {"small": small_scene}, {"small": small_frame}
        )
        assert result.succeeded
        assert result.executions_of("profile") == 1
        assert result.executions_of("quantize") == 1

    def test_distinct_gpus_do_not_collide(self, small_scene, small_frame):
        points = [
            SweepPoint("small", MOBILE_SOC),
            SweepPoint("small", RTX_2060),
        ]
        result = SweepPlanner().run(
            points, {"small": small_scene}, {"small": small_frame}
        )
        assert result.succeeded
        # Profiling is GPU-independent: still shared.
        assert result.executions_of("profile") == 1
        # Downscaling and simulation are not.
        assert result.executions_of("downscale") == 2
        assert result.executions_of("simulate_groups") == 2
        mobile, rtx = (result.value(p) for p in points)
        assert mobile.gpu_name == "MobileSoC" and rtx.gpu_name == "RTX2060"

    def test_duplicate_points_execute_once(self, small_scene, small_frame):
        point = SweepPoint("small", MOBILE_SOC, config=ZatelConfig(seed=2))
        result = SweepPlanner().run(
            [point, point], {"small": small_scene}, {"small": small_frame}
        )
        assert result.succeeded
        assert result.counters.total_executions() == 7  # one full pipeline
        assert result.plan.unique_nodes == 7

    def test_shared_store_carries_across_sweeps(
        self, small_scene, small_frame, tmp_path
    ):
        """A second sweep over a re-opened disk store re-executes none of
        the expensive (cacheable) stages; only the cheap memory-only
        ones (downscale, partition, select, combine) recompute."""
        store = ArtifactStore(tmp_path)
        points = [SweepPoint("small", MOBILE_SOC)]
        first = SweepPlanner(store=store).run(
            points, {"small": small_scene}, {"small": small_frame}
        )
        assert first.counters.total_executions() == 7
        again = SweepPlanner(store=ArtifactStore(tmp_path)).run(
            points, {"small": small_scene}, {"small": small_frame}
        )
        assert again.succeeded
        for expensive in ("profile", "quantize", "simulate_groups"):
            assert again.executions_of(expensive) == 0
            assert again.counters.cache_hits[expensive] == 1
        assert again.value(points[0]).metrics == first.value(points[0]).metrics


class TestRunnerSweep:
    def test_runner_sweep_end_to_end(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        points = [
            SweepPoint(
                "SPRNG", MOBILE_SOC, mode="sampling", fraction=perc / 100.0
            )
            for perc in (20, 40)
        ]
        result = runner.sweep(points, width=32, height=32)
        assert result.succeeded
        assert result.executions_of("profile") == 1
        assert result.executions_of("quantize") == 1
        for point in points:
            assert result.value(point).metrics["cycles"] > 0
