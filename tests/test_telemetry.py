"""Tests for the telemetry bus: instruments, stat groups, the metric
registry, interval snapshots, timeline windows, and .zperf round-trips."""

import dataclasses
import json

import pytest

from repro.gpu.cache import CacheStats
from repro.gpu.dram import DRAMStats
from repro.gpu.rt_unit import RTStats
from repro.gpu.stats import (
    EXTENDED_METRICS,
    METRIC_DESCRIPTIONS,
    METRICS,
    MetricKind,
    SimulationStats,
    merge_simulation_stats,
)
from repro.gpu.telemetry import (
    METRIC_REGISTRY,
    METRIC_SPECS,
    Counter,
    CycleCounter,
    Histogram,
    IntervalSnapshot,
    MaxGauge,
    NULL_BUS,
    RatioGauge,
    StatGroup,
    TelemetryBus,
    TelemetryRecord,
    TimelineEvent,
    aggregate_metrics,
    export_zperf,
    load_zperf,
)


class _WorkStats(StatGroup):
    items = Counter("things processed")
    failures = Counter("things dropped")
    busy = CycleCounter("cycles occupied")
    peak = MaxGauge("high-water mark")
    sizes = Histogram(4, "size distribution")
    failure_rate = RatioGauge("failures", "items")


class TestInstruments:
    def test_defaults_and_kwargs_constructor(self):
        s = _WorkStats()
        assert s.items == 0 and s.busy == 0.0 and s.sizes == [0, 0, 0, 0]
        s2 = _WorkStats(items=10, failures=4)
        assert s2.items == 10 and s2.failures == 4

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="no statistic"):
            _WorkStats(bogus=1)

    def test_plain_arithmetic_storage(self):
        s = _WorkStats()
        s.items += 3
        s.busy += 1.5
        s.sizes[2] += 1
        assert s.items == 3 and s.busy == 1.5 and s.sizes[2] == 1

    def test_ratio_gauge_reads_weighted(self):
        s = _WorkStats(items=10, failures=4)
        assert s.failure_rate == 0.4
        assert _WorkStats().failure_rate == 0.0  # zero-denominator guard

    def test_generic_merge_per_semantics(self):
        a = _WorkStats(items=10, failures=1, busy=2.0, peak=5.0,
                       sizes=[1, 0, 0, 0])
        b = _WorkStats(items=30, failures=5, busy=3.0, peak=3.0,
                       sizes=[0, 2, 0, 1])
        a.merge(b)
        assert a.items == 40 and a.failures == 6 and a.busy == 5.0
        assert a.peak == 5.0  # max, not sum
        assert a.sizes == [1, 2, 0, 1]  # element-wise
        assert a.failure_rate == 6 / 40  # weighted mean via components

    def test_merge_rejects_foreign_group(self):
        with pytest.raises(TypeError, match="cannot merge"):
            _WorkStats().merge(CacheStats())

    def test_merged_classmethod(self):
        total = _WorkStats.merged(
            [_WorkStats(items=1), _WorkStats(items=2), _WorkStats(items=3)]
        )
        assert total.items == 6

    def test_equality_and_repr(self):
        assert _WorkStats(items=2) == _WorkStats(items=2)
        assert _WorkStats(items=2) != _WorkStats(items=3)
        assert "items=2" in repr(_WorkStats(items=2))

    def test_scalars_exclude_histograms(self):
        flat = _WorkStats(items=5, sizes=[9, 9, 9, 9]).scalars()
        assert flat["items"] == 5
        assert "sizes" not in flat


class TestComponentStatGroups:
    """The converted simulator stat classes keep their legacy surface."""

    def test_cache_stats(self):
        s = CacheStats(accesses=10, misses=4)
        assert s.hits == 6 and s.miss_rate == 0.4
        s.merge(CacheStats(accesses=10, misses=0))
        assert s.accesses == 20 and s.miss_rate == 0.2

    def test_dram_stats(self):
        s = DRAMStats(requests=3, data_cycles=24.0, pending_cycles=48.0)
        assert s.efficiency() == 0.5
        s.merge(DRAMStats(requests=1, data_cycles=8.0, pending_cycles=8.0))
        assert s.requests == 4 and s.data_cycles == 32.0

    def test_rt_stats_histogram_merges(self):
        a = RTStats(traversal_steps=2, active_ray_steps=4)
        a.active_lane_hist[2] = 2
        b = RTStats(traversal_steps=1, active_ray_steps=32)
        b.active_lane_hist[32] = 1
        a.merge(b)
        assert a.traversal_steps == 3
        assert a.active_lane_hist[2] == 2 and a.active_lane_hist[32] == 1
        assert a.average_efficiency() == 12.0


class TestMetricRegistry:
    def test_views_derive_from_registry(self):
        assert METRICS == tuple(
            s.name for s in METRIC_SPECS if not s.extended
        )
        assert EXTENDED_METRICS == tuple(
            s.name for s in METRIC_SPECS if s.extended
        )
        assert set(METRIC_DESCRIPTIONS) == set(METRICS)
        assert MetricKind.BY_METRIC == {
            s.name: s.kind for s in METRIC_SPECS
        }

    def test_point_error_flags_match_harness_convention(self):
        from repro.harness.metrics import RATE_METRICS

        assert RATE_METRICS == frozenset(
            {"l1d_miss_rate", "l2_miss_rate", "dram_efficiency",
             "bw_utilization"}
        )
        # rt/simd efficiency and occupancy keep relative-percent errors
        assert not METRIC_REGISTRY["rt_efficiency"].point_error
        assert not METRIC_REGISTRY["simd_efficiency"].point_error

    def test_aggregate_semantics(self):
        groups = [
            {"ipc": 20.0, "cycles": 100.0, "l2_miss_rate": 0.2},
            {"ipc": 50.0, "cycles": 200.0, "l2_miss_rate": 0.4},
        ]
        combined = aggregate_metrics(groups)
        assert combined["ipc"] == 70.0  # throughput sums (paper §III-H)
        assert combined["cycles"] == 150.0  # absolute averages
        assert combined["l2_miss_rate"] == pytest.approx(0.3)

    def test_aggregate_divisors(self):
        groups = [{"ipc": 20.0}, {"ipc": 50.0}]
        degraded = aggregate_metrics(groups, throughput_divisor=0.5)
        assert degraded["ipc"] == 140.0
        with pytest.raises(ValueError):
            aggregate_metrics([])
        with pytest.raises(ValueError):
            aggregate_metrics(groups, throughput_divisor=0.0)


class TestSimulationStatsMerge:
    """Satellite: merge helpers must reject mismatched provenance."""

    def _stats(self, **kw):
        base = dict(
            config_name="MobileSoC", backend="packet", cycles=100.0,
            instructions=1000, l1d_accesses=10, l1d_misses=2,
            sm_count=8, dram_channels=4,
        )
        base.update(kw)
        return SimulationStats(**base)

    def test_merge_sums_counters_and_maxes_cycles(self):
        a = self._stats(cycles=100.0, instructions=1000)
        b = self._stats(cycles=80.0, instructions=500)
        a.merge_from(b)
        assert a.cycles == 100.0
        assert a.instructions == 1500
        assert a.l1d_accesses == 20
        assert a.sm_count == 16 and a.dram_channels == 8

    def test_mismatched_backend_rejected(self):
        a = self._stats(backend="packet")
        b = self._stats(backend="scalar")
        with pytest.raises(ValueError, match="backends"):
            a.merge_from(b)

    def test_mismatched_config_rejected(self):
        a = self._stats()
        b = self._stats(config_name="RTX2060")
        with pytest.raises(ValueError, match="config_name"):
            a.merge_from(b)

    def test_empty_backend_adopts_other(self):
        a = self._stats(backend="")
        a.merge_from(self._stats(backend="packet"))
        assert a.backend == "packet"

    def test_merge_simulation_stats_helper(self):
        runs = [self._stats(), self._stats(), self._stats()]
        total = merge_simulation_stats(runs)
        assert total.instructions == 3000
        assert total.sm_count == 24
        with pytest.raises(ValueError):
            merge_simulation_stats([])
        with pytest.raises(ValueError):
            merge_simulation_stats(
                [self._stats(), self._stats(warp_size=64)]
            )


class TestTelemetryBus:
    def test_disabled_bus_is_inert(self):
        bus = TelemetryBus()
        assert not bus.enabled
        group = bus.register("a", CacheStats())
        bus.register("a", CacheStats())  # duplicate fine when disabled
        bus.window("a", "stall", 0.0, 5.0)
        bus.advance(1e9)
        bus.finalize(1e9)
        assert bus.record() is None
        assert isinstance(group, CacheStats)

    def test_null_bus_shared_safely(self):
        NULL_BUS.register("x", CacheStats())
        NULL_BUS.register("x", CacheStats())
        assert NULL_BUS.record() is None

    def test_duplicate_registration_rejected_when_enabled(self):
        bus = TelemetryBus(interval=10)
        bus.register("a", CacheStats())
        with pytest.raises(ValueError, match="already registered"):
            bus.register("a", CacheStats())

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            TelemetryBus(interval=-1)

    def test_interval_snapshots_are_cumulative(self):
        bus = TelemetryBus(interval=10)
        stats = bus.register("cache", CacheStats())
        stats.accesses += 3
        bus.advance(10.0)  # boundary at 10 crossed
        stats.accesses += 5
        bus.advance(25.0)  # boundaries at 20 crossed
        bus.finalize(25.0)
        record = bus.record()
        assert [s.counters["cache.accesses"] for s in record.snapshots] == [
            3, 8, 8,
        ]
        assert record.deltas()[0]["cache.accesses"] == 3
        assert record.deltas()[1]["cache.accesses"] == 5
        assert sum(d["cache.accesses"] for d in record.deltas()) == 8
        assert record.final_counters()["cache.accesses"] == 8

    def test_advance_catches_up_over_skipped_boundaries(self):
        bus = TelemetryBus(interval=10)
        bus.register("cache", CacheStats())
        bus.advance(35.0)  # crosses 10, 20, 30 at once
        assert len(bus.record().snapshots) == 3

    def test_finalize_emits_trailing_snapshot_once(self):
        bus = TelemetryBus(interval=10)
        bus.register("cache", CacheStats())
        bus.advance(10.0)
        bus.finalize(10.0)  # last snapshot already at 10: no duplicate
        assert len(bus.record().snapshots) == 1

    def test_windows_coalesce_per_lane(self):
        bus = TelemetryBus(timeline=True)
        bus.window("sm0", "issue_stall", 0.0, 5.0)
        bus.window("sm0", "issue_stall", 3.0, 8.0)  # overlaps: extends
        bus.window("sm0", "issue_stall", 20.0, 22.0)  # gap: new window
        bus.window("sm1", "issue_stall", 1.0, 2.0)  # separate lane
        bus.finalize(30.0)
        events = bus.record().events
        assert events == (
            TimelineEvent(0.0, 8.0, "sm0", "issue_stall"),
            TimelineEvent(1.0, 2.0, "sm1", "issue_stall"),
            TimelineEvent(20.0, 22.0, "sm0", "issue_stall"),
        )
        assert events[0].duration == 8.0

    def test_empty_windows_dropped(self):
        bus = TelemetryBus(timeline=True)
        bus.window("sm0", "issue_stall", 5.0, 5.0)
        bus.finalize(10.0)
        assert bus.record().events == ()


class TestZperfRoundTrip:
    def _record(self):
        return TelemetryRecord(
            interval=10,
            snapshots=(
                IntervalSnapshot(0, 0.0, 10.0, {"core.instructions": 100}),
                IntervalSnapshot(1, 10.0, 18.0, {"core.instructions": 130}),
            ),
            events=(TimelineEvent(2.0, 6.0, "sm0", "issue_stall"),),
        )

    def _stats(self):
        return SimulationStats(
            config_name="MobileSoC", backend="packet", cycles=18.0,
            instructions=130, telemetry=self._record(),
        )

    def test_round_trip(self, tmp_path):
        path = export_zperf(tmp_path / "run.zperf", self._stats(),
                            meta={"scene": "SPRNG"})
        data = load_zperf(path)
        assert data["header"]["interval"] == 10
        assert data["header"]["scene"] == "SPRNG"
        assert data["header"]["cycles"] == 18.0
        assert [row["d"]["core.instructions"] for row in data["intervals"]] \
            == [100, 30]
        assert data["events"][0]["component"] == "sm0"
        assert data["summary"]["counters"]["core.instructions"] == 130
        assert data["summary"]["metrics"]["cycles"] == 18.0

    def test_export_without_telemetry_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="without telemetry"):
            export_zperf(tmp_path / "x.zperf", SimulationStats())

    def test_load_rejects_non_zperf(self, tmp_path):
        bad = tmp_path / "bad.zperf"
        bad.write_text('{"type": "interval"}\n')
        with pytest.raises(ValueError, match="no header"):
            load_zperf(bad)
        bad.write_text("not json\n")
        with pytest.raises(ValueError, match="malformed"):
            load_zperf(bad)
        bad.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_zperf(bad)

    def test_load_rejects_future_version(self, tmp_path):
        bad = tmp_path / "v99.zperf"
        bad.write_text(json.dumps({"type": "header", "version": 99}) + "\n")
        with pytest.raises(ValueError, match="version"):
            load_zperf(bad)


class TestStatsCarryTelemetry:
    def test_run_attaches_record_when_enabled(self, small_scene):
        from repro.gpu import CycleSimulator, MOBILE_SOC, compile_kernel
        from repro.tracer.tracer import FunctionalTracer, RenderSettings

        frame = FunctionalTracer(
            small_scene,
            RenderSettings(width=8, height=8, samples_per_pixel=1),
        ).trace_frame()
        pixels = list(frame.pixels)
        gpu = dataclasses.replace(
            MOBILE_SOC, telemetry_interval=100, timeline_trace=True
        )
        warps = compile_kernel(frame, pixels, small_scene.addresses)
        stats = CycleSimulator(gpu, small_scene.addresses).run(warps)
        record = stats.telemetry
        assert record is not None and record.interval == 100
        assert record.snapshots[-1].end == stats.cycles
        assert record.final_counters()["core.instructions"] \
            == stats.instructions
        assert len(record.events) > 0

        plain = CycleSimulator(MOBILE_SOC, small_scene.addresses).run(warps)
        assert plain.telemetry is None
        # telemetry is observability only: metrics must be identical
        assert plain.metrics() == stats.metrics()
        assert plain.extended_metrics() == stats.extended_metrics()


class TestTimelineRenderers:
    def test_render_timeline(self):
        from repro.viz import render_timeline

        events = [
            TimelineEvent(0.0, 50.0, "sm0", "issue_stall"),
            TimelineEvent(10.0, 20.0, "dram.0", "queue_contention"),
        ]
        out = render_timeline(events, total_cycles=100.0, width=20)
        assert "sm0 issue_stall" in out
        assert "dram.0 queue_contention" in out
        assert "50.0%" in out

    def test_render_timeline_truncates_loudly(self):
        from repro.viz import render_timeline

        events = [
            TimelineEvent(0.0, 1.0, f"sm{i}", "issue_stall")
            for i in range(30)
        ]
        out = render_timeline(events, 10.0, max_lanes=5)
        assert "25 more lanes" in out

    def test_render_timeline_empty(self):
        from repro.viz import render_timeline

        assert "no timeline events" in render_timeline([], 100.0)

    def test_render_interval_activity(self):
        from repro.viz import render_interval_activity

        deltas = [
            {"core.instructions": 100, "sm0.l1d.misses": 5},
            {"core.instructions": 50, "sm0.l1d.misses": 1},
        ]
        out = render_interval_activity(deltas)
        assert "instructions" in out and "total 150" in out
        assert "L1D misses" in out
        assert "no interval snapshots" in render_interval_activity([])


class TestTraceTimelineCLI:
    def test_trace_timeline_writes_zperf(self, tmp_path, monkeypatch, capsys):
        import repro.harness.runner as runner_module
        from repro.cli import main

        monkeypatch.setattr(
            runner_module, "_shared", runner_module.Runner(cache_dir=tmp_path)
        )
        out = tmp_path / "run.zperf"
        code = main(
            ["trace", "SPRNG", "--size", "12", "--timeline",
             "--interval", "200", "--out", str(out)]
        )
        assert code == 0
        data = load_zperf(out)
        assert data["header"]["scene"] == "SPRNG"
        assert data["summary"]["metrics"]["cycles"] > 0
        printed = capsys.readouterr().out
        assert "timeline over" in printed
        assert "per-interval activity" in printed

    def test_trace_timeline_rejects_bad_interval(self, tmp_path, monkeypatch):
        import repro.harness.runner as runner_module
        from repro.cli import main

        monkeypatch.setattr(
            runner_module, "_shared", runner_module.Runner(cache_dir=tmp_path)
        )
        assert main(
            ["trace", "SPRNG", "--size", "12", "--timeline",
             "--interval", "0"]
        ) == 2
