"""Tests for the analytical-model lineage (§II reconstruction)."""

import pytest

from repro.gpu import MOBILE_SOC, RTX_2060
from repro.models import (
    ANALYTICAL_LINEAGE,
    GCoMStyleModel,
    GPUMechStyleModel,
    MDMStyleModel,
)


@pytest.fixture(scope="module")
def predictions(small_scene, small_frame):
    return {
        cls.name: cls(MOBILE_SOC).predict(small_scene, small_frame)
        for cls in ANALYTICAL_LINEAGE
    }


class TestLineageBasics:
    def test_lineage_order(self):
        assert ANALYTICAL_LINEAGE == (
            GPUMechStyleModel, MDMStyleModel, GCoMStyleModel
        )

    def test_all_generations_produce_positive_cycles(self, predictions):
        for name, prediction in predictions.items():
            assert prediction.cycles > 0, name
            assert prediction.model_name == name

    def test_intervals_nonnegative(self, predictions):
        for prediction in predictions.values():
            assert all(v >= 0 for v in prediction.intervals.values())

    def test_models_are_deterministic(self, small_scene, small_frame):
        a = MDMStyleModel(MOBILE_SOC).predict(small_scene, small_frame)
        b = MDMStyleModel(MOBILE_SOC).predict(small_scene, small_frame)
        assert a.cycles == b.cycles


class TestLineageSemantics:
    def test_gpumech_ignores_divergence(self, predictions):
        # Generation 1 has no per-line memory pricing: its memory interval
        # is a pure latency-exposure term, far below MDM's traffic-based
        # estimate on a divergent workload.
        gpumech = predictions["GPUMech-style"].intervals["memory"]
        mdm = predictions["MDM-style"].intervals["memory"]
        assert gpumech < mdm

    def test_bigger_gpu_predicts_fewer_cycles(self, small_scene, small_frame):
        for cls in ANALYTICAL_LINEAGE:
            mobile = cls(MOBILE_SOC).predict(small_scene, small_frame)
            rtx = cls(RTX_2060).predict(small_scene, small_frame)
            assert rtx.cycles <= mobile.cycles * 1.05, cls.name

    def test_gcom_matches_analytical_model(self, small_scene, small_frame):
        from repro.models import AnalyticalModel

        lineage = GCoMStyleModel(MOBILE_SOC).predict(small_scene, small_frame)
        direct = AnalyticalModel(MOBILE_SOC).predict(small_scene, small_frame)
        assert lineage.cycles == direct.metrics["cycles"]

    def test_all_cheaper_than_simulation(self, small_frame, small_full_stats):
        # Analytical models are (nearly) free; the point of the lineage is
        # speed.  Their cost is one pass over per-pixel trace summaries,
        # well below the simulator's event count.
        from repro.models import AnalyticalModel

        assert AnalyticalModel.work_units(small_frame) < small_full_stats.work_units
