"""Unit tests for the fault-tolerant group execution engine.

All faults are injected deterministically (repro.testing.faults); no test
here depends on real flakiness, scheduling, or wall-clock timing beyond
generous kill deadlines.
"""

import pickle

import pytest

from repro.core.executor import (
    ExecutionPolicy,
    GroupExecutor,
    default_quorum,
)
from repro.errors import GroupTimeoutError, WorkerCrashError
from repro.testing import FaultPlan, corrupt_checkpoint, crash, exception, hang
from repro.testing.faults import ALWAYS

#: Retry delays collapsed to zero so tests never sleep.
FAST = {"backoff_base": 0.0, "backoff_cap": 0.0}


def square(index, attempt):  # noqa: ARG001 - executor task signature
    return index * index


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(workers=0)
        with pytest.raises(ValueError):
            ExecutionPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            ExecutionPolicy(retries=-1)
        with pytest.raises(ValueError):
            ExecutionPolicy(quorum=0)

    def test_backoff_is_deterministic_and_bounded(self):
        a = ExecutionPolicy(seed=7, backoff_base=0.1, backoff_cap=1.5)
        b = ExecutionPolicy(seed=7, backoff_base=0.1, backoff_cap=1.5)
        delays = [a.backoff_delay(i, n) for i in range(4) for n in range(1, 5)]
        assert delays == [
            b.backoff_delay(i, n) for i in range(4) for n in range(1, 5)
        ]
        assert all(0.0 <= d <= 1.5 for d in delays)
        # Different seeds jitter differently.
        c = ExecutionPolicy(seed=8, backoff_base=0.1, backoff_cap=1.5)
        assert delays != [
            c.backoff_delay(i, n) for i in range(4) for n in range(1, 5)
        ]

    def test_default_quorum_is_majority(self):
        assert default_quorum(4) == 2
        assert default_quorum(5) == 3
        assert default_quorum(1) == 1


class TestSerialExecution:
    def test_all_tasks_run(self):
        report = GroupExecutor(ExecutionPolicy()).run(square, 5)
        assert report.results == {i: i * i for i in range(5)}
        assert report.failures == []
        assert report.attempts == {i: 1 for i in range(5)}

    def test_transient_exception_is_retried(self):
        plan = FaultPlan([exception(2, attempts=1)])
        policy = ExecutionPolicy(retries=2, **FAST)
        report = GroupExecutor(policy, fault_plan=plan).run(square, 4)
        assert report.results == {i: i * i for i in range(4)}
        assert report.attempts[2] == 2
        assert report.attempts[0] == 1

    def test_exhausted_retries_become_failure_record(self):
        plan = FaultPlan([exception(1, attempts=ALWAYS)])
        policy = ExecutionPolicy(retries=2, **FAST)
        report = GroupExecutor(policy, fault_plan=plan).run(square, 3)
        assert set(report.results) == {0, 2}
        (record,) = report.failures
        assert record.index == 1
        assert record.error == "SimulationError"
        assert record.attempts == 3  # first try + 2 retries
        assert "injected" in record.message

    def test_crash_fault_degrades_to_exception_in_process(self):
        # A real os._exit in serial mode would kill the test runner; the
        # plan converts it to an exception so serial runs stay testable.
        plan = FaultPlan([crash(0, attempts=ALWAYS)])
        policy = ExecutionPolicy(retries=0, **FAST)
        report = GroupExecutor(policy, fault_plan=plan).run(square, 2)
        assert report.failures[0].error == "SimulationError"
        assert report.results == {1: 1}


class TestForkedExecution:
    def test_matches_serial_results(self):
        serial = GroupExecutor(ExecutionPolicy()).run(square, 6)
        forked = GroupExecutor(ExecutionPolicy(workers=3)).run(square, 6)
        assert forked.results == serial.results
        assert forked.failures == []

    def test_crashed_worker_fails_only_its_task(self):
        plan = FaultPlan([crash(1, attempts=ALWAYS)])
        policy = ExecutionPolicy(workers=2, retries=1, **FAST)
        report = GroupExecutor(policy, fault_plan=plan).run(square, 4)
        assert set(report.results) == {0, 2, 3}
        (record,) = report.failures
        assert record.error == WorkerCrashError.__name__
        assert record.attempts == 2

    def test_crash_then_retry_succeeds(self):
        plan = FaultPlan([crash(0, attempts=1)])
        policy = ExecutionPolicy(workers=2, retries=1, **FAST)
        report = GroupExecutor(policy, fault_plan=plan).run(square, 3)
        assert report.results == {0: 0, 1: 1, 2: 4}
        assert report.attempts[0] == 2
        assert report.failures == []

    def test_hung_worker_is_killed_and_reported(self):
        plan = FaultPlan([hang(2, attempts=ALWAYS)])
        policy = ExecutionPolicy(workers=2, retries=0, timeout=0.4, **FAST)
        report = GroupExecutor(policy, fault_plan=plan).run(square, 3)
        assert set(report.results) == {0, 1}
        (record,) = report.failures
        assert record.error == GroupTimeoutError.__name__
        assert "timeout" in record.message

    def test_worker_exception_reports_original_type(self):
        plan = FaultPlan([exception(0, attempts=ALWAYS)])
        policy = ExecutionPolicy(workers=2, retries=0, **FAST)
        report = GroupExecutor(policy, fault_plan=plan).run(square, 2)
        assert report.failures[0].error == "SimulationError"


class TestCheckpointing:
    def test_checkpoints_written_per_group(self, tmp_path):
        policy = ExecutionPolicy(checkpoint_dir=tmp_path)
        GroupExecutor(policy).run(square, 3)
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["group_0000.pkl", "group_0001.pkl", "group_0002.pkl"]

    def test_resume_skips_completed_groups(self, tmp_path):
        policy = ExecutionPolicy(checkpoint_dir=tmp_path)
        GroupExecutor(policy).run(square, 4)

        def exploding(index, attempt):
            raise AssertionError("resumed run must not re-execute tasks")

        resumed = GroupExecutor(
            ExecutionPolicy(checkpoint_dir=tmp_path, resume=True)
        ).run(exploding, 4)
        assert resumed.results == {i: i * i for i in range(4)}
        assert resumed.resumed == (0, 1, 2, 3)
        assert all(n == 0 for n in resumed.attempts.values())

    def test_resume_completes_only_missing_groups(self, tmp_path):
        # Interrupted run: group 2 failed permanently, others checkpointed.
        plan = FaultPlan([exception(2, attempts=ALWAYS)])
        first = GroupExecutor(
            ExecutionPolicy(checkpoint_dir=tmp_path, retries=0, **FAST),
            fault_plan=plan,
        ).run(square, 4)
        assert set(first.results) == {0, 1, 3}

        calls = []

        def counting(index, attempt):
            calls.append(index)
            return square(index, attempt)

        resumed = GroupExecutor(
            ExecutionPolicy(checkpoint_dir=tmp_path, resume=True)
        ).run(counting, 4)
        assert calls == [2]
        assert resumed.results == {i: i * i for i in range(4)}

    def test_corrupt_checkpoint_is_deleted_and_recomputed(self, tmp_path):
        plan = FaultPlan([corrupt_checkpoint(1)])
        GroupExecutor(
            ExecutionPolicy(checkpoint_dir=tmp_path), fault_plan=plan
        ).run(square, 3)
        # The injected truncation leaves group 1 unreadable on disk.
        with pytest.raises(Exception):
            with (tmp_path / "group_0001.pkl").open("rb") as handle:
                pickle.load(handle)

        calls = []

        def counting(index, attempt):
            calls.append(index)
            return square(index, attempt)

        resumed = GroupExecutor(
            ExecutionPolicy(checkpoint_dir=tmp_path, resume=True)
        ).run(counting, 3)
        assert calls == [1]
        assert resumed.results == {0: 0, 1: 1, 2: 4}
        # The recompute healed the checkpoint atomically.
        with (tmp_path / "group_0001.pkl").open("rb") as handle:
            assert pickle.load(handle)["result"] == 1

    def test_checkpoint_ignores_wrong_index_payload(self, tmp_path):
        path = tmp_path / "group_0000.pkl"
        with path.open("wb") as handle:
            pickle.dump({"index": 9, "result": 81}, handle)
        report = GroupExecutor(
            ExecutionPolicy(checkpoint_dir=tmp_path, resume=True)
        ).run(square, 1)
        assert report.results == {0: 0}

    def test_checkpoints_work_under_forked_execution(self, tmp_path):
        policy = ExecutionPolicy(workers=2, checkpoint_dir=tmp_path)
        GroupExecutor(policy).run(square, 4)
        resumed = GroupExecutor(
            ExecutionPolicy(checkpoint_dir=tmp_path, resume=True)
        ).run(square, 4)
        assert resumed.resumed == (0, 1, 2, 3)


class TestSerialFallback:
    """workers > 1 on a platform without ``fork`` degrades loudly."""

    @pytest.fixture()
    def no_fork(self, monkeypatch):
        import repro.core.executor as executor_module

        monkeypatch.setattr(
            executor_module.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )

    def test_fallback_is_recorded_and_warned(self, no_fork, caplog):
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.core.executor"):
            report = GroupExecutor(ExecutionPolicy(workers=3)).run(square, 4)
        assert report.serial_fallback is True
        # The degrade changes scheduling, never results.
        assert report.results == {i: i * i for i in range(4)}
        assert any(
            "workers=3" in record.message and "fork" in record.message
            for record in caplog.records
        )

    def test_serial_request_does_not_flag_fallback(self, no_fork, caplog):
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.core.executor"):
            report = GroupExecutor(ExecutionPolicy(workers=1)).run(square, 3)
        assert report.serial_fallback is False
        assert not caplog.records

    def test_forked_execution_does_not_flag_fallback(self):
        report = GroupExecutor(ExecutionPolicy(workers=2)).run(square, 4)
        assert report.serial_fallback is False

    def test_fallback_surfaces_on_zatel_result(
        self, no_fork, small_scene, small_frame
    ):
        from repro.core import Zatel
        from repro.gpu import MOBILE_SOC

        result = Zatel(MOBILE_SOC).predict(small_scene, small_frame, workers=2)
        assert result.serial_fallback is True
        # And the same prediction run serially reports no fallback.
        serial = Zatel(MOBILE_SOC).predict(small_scene, small_frame)
        assert serial.serial_fallback is False
        assert serial.metrics == result.metrics
