"""Tests for SceneSpec identity and the bounded scene registry."""

import pytest

from repro.scene import make_scene
from repro.scene.animation import SceneSequence, interpolate_knobs
from repro.scene.registry import (
    SCENE_CACHE_MAX,
    build_scene_from_spec,
    clear_scene_cache,
    resolve_scene,
    scene_cache_info,
)
from repro.scene.spec import SceneSpec, as_scene_spec, scene_label


class TestSceneSpecConstruction:
    def test_library_spec(self):
        spec = SceneSpec.library("SPRNG")
        assert spec.kind == "library"
        assert spec.label() == "SPRNG"
        assert spec.payload() == "SPRNG"

    def test_unknown_library_scene_rejected(self):
        with pytest.raises(ValueError, match="unknown scene"):
            SceneSpec.library("NOPE")

    def test_unknown_recipe_rejected(self):
        with pytest.raises(ValueError, match="unknown scene recipe"):
            SceneSpec.recipe("fog", {"density": 0.5})

    def test_out_of_range_knob_names_range(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            SceneSpec.recipe("saturation", {"level": 1.5})

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown knob"):
            SceneSpec.recipe("saturation", {"brightness": 0.5})

    def test_library_takes_no_knobs(self):
        with pytest.raises(ValueError, match="no knobs"):
            SceneSpec(kind="library", name="SPRNG", knobs={"level": 0.5})

    def test_frame_index_range_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            SceneSpec(
                kind="frame", name="saturation", knobs={"level": 0.5},
                frame=4, frames=4,
            )

    def test_end_knobs_must_subset_start_knobs(self):
        with pytest.raises(ValueError, match="end_knobs"):
            SceneSpec(
                kind="frame", name="clutter",
                knobs={"triangles_target": 1000},
                end_knobs={"reflective_share": 0.5},
                frame=0, frames=2,
            )


class TestFromValue:
    def test_string_is_library(self):
        assert SceneSpec.from_value("SPRNG") == SceneSpec.library("SPRNG")

    def test_recipe_object(self):
        spec = SceneSpec.from_value(
            {"recipe": "saturation", "knobs": {"level": 0.4}, "seed": 3}
        )
        assert spec.kind == "recipe"
        assert spec.resolved_knobs() == {"level": 0.4}
        assert spec.seed == 3

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown scene field"):
            SceneSpec.from_value({"recipe": "saturation", "knob": {}})

    def test_needs_exactly_one_of_library_or_recipe(self):
        with pytest.raises(ValueError, match="exactly one"):
            SceneSpec.from_value({"library": "SPRNG", "recipe": "saturation"})
        with pytest.raises(ValueError, match="exactly one"):
            SceneSpec.from_value({"knobs": {}})

    def test_library_object_takes_no_seed(self):
        with pytest.raises(ValueError, match="no knobs or seed"):
            SceneSpec.from_value({"library": "SPRNG", "seed": 1})

    def test_as_scene_spec_normalizes_strings(self):
        assert as_scene_spec("BUNNY") == SceneSpec.library("BUNNY")
        spec = SceneSpec.recipe("saturation")
        assert as_scene_spec(spec) is spec

    def test_scene_label_handles_both_forms(self):
        assert scene_label("SPRNG") == "SPRNG"
        assert "saturation" in scene_label(SceneSpec.recipe("saturation"))


class TestFingerprints:
    def test_equal_content_equal_fingerprint(self):
        a = SceneSpec.recipe("saturation", {"level": 0.4}, seed=1)
        b = SceneSpec.recipe("saturation", {"level": 0.4}, seed=1)
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_knob_change_changes_fingerprint(self):
        a = SceneSpec.recipe("saturation", {"level": 0.4})
        b = SceneSpec.recipe("saturation", {"level": 0.5})
        assert a.fingerprint() != b.fingerprint()

    def test_seed_change_changes_fingerprint(self):
        a = SceneSpec.recipe("saturation", {"level": 0.4}, seed=1)
        b = SceneSpec.recipe("saturation", {"level": 0.4}, seed=2)
        assert a.fingerprint() != b.fingerprint()

    def test_frames_of_one_sequence_differ(self):
        sequence = SceneSequence.from_value(
            {"sequence": "saturation", "frames": 3, "knobs": {"level": 0.5}}
        )
        prints = {spec.fingerprint() for spec in sequence.frame_specs()}
        assert len(prints) == 3

    def test_recipe_and_same_name_library_never_collide(self):
        # Display names can collide (SAT040); fingerprints cannot.
        a = SceneSpec.recipe("saturation", {"level": 0.4}, seed=1)
        b = SceneSpec.recipe("saturation", {"level": 0.4}, seed=2)
        assert make_scene(a).name == make_scene(b).name
        assert a.fingerprint() != b.fingerprint()


class TestSceneRegistryCache:
    def setup_method(self):
        clear_scene_cache()

    def teardown_method(self):
        clear_scene_cache()

    def test_equal_knob_recipe_objects_share_one_instance(self):
        # Regression: the old per-name lru_cache keyed on the argument
        # object; two equal-content spec objects must share one Scene.
        a = SceneSpec.recipe("saturation", {"level": 0.3}, seed=1)
        b = SceneSpec.recipe("saturation", {"level": 0.3}, seed=1)
        assert resolve_scene(a) is resolve_scene(b)
        info = scene_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 1

    def test_library_name_and_spec_share_one_instance(self):
        assert resolve_scene("SPRNG") is resolve_scene(
            SceneSpec.library("SPRNG")
        )

    def test_cache_is_bounded(self):
        for i in range(SCENE_CACHE_MAX + 8):
            resolve_scene(
                SceneSpec.recipe("saturation", {"level": 0.0}, seed=i)
            )
        assert scene_cache_info()["size"] <= SCENE_CACHE_MAX

    def test_evicted_scene_rebuilds(self):
        first = SceneSpec.recipe("saturation", {"level": 0.0}, seed=0)
        resolve_scene(first)
        for i in range(1, SCENE_CACHE_MAX + 2):
            resolve_scene(
                SceneSpec.recipe("saturation", {"level": 0.0}, seed=i)
            )
        rebuilt = resolve_scene(first)  # aged out; builds again
        assert rebuilt.spec == first

    def test_built_scene_carries_its_spec(self):
        spec = SceneSpec.recipe("clutter", {"triangles_target": 1200}, seed=3)
        assert build_scene_from_spec(spec).spec == spec
        assert resolve_scene("BUNNY").spec == SceneSpec.library("BUNNY")


class TestSequenceInterpolation:
    def test_interpolate_endpoints(self):
        start, end = {"level": 0.2}, {"level": 0.8}
        assert interpolate_knobs(start, end, 0.0) == {"level": 0.2}
        assert interpolate_knobs(start, end, 1.0) == {"level": 0.8}

    def test_interpolation_t_range_checked(self):
        with pytest.raises(ValueError):
            interpolate_knobs({"level": 0.2}, {"level": 0.8}, 1.5)

    def test_sequence_frame_specs_interpolate(self):
        sequence = SceneSequence.from_value(
            {
                "sequence": "saturation",
                "frames": 3,
                "knobs": {"level": 0.0},
                "end_knobs": {"level": 1.0},
            }
        )
        levels = [
            spec.resolved_knobs()["level"] for spec in sequence.frame_specs()
        ]
        assert levels == [0.0, 0.5, 1.0]

    def test_sequence_orbit_progresses(self):
        sequence = SceneSequence.from_value(
            {
                "sequence": "saturation",
                "frames": 3,
                "knobs": {"level": 0.5},
                "orbit_degrees": 30.0,
            }
        )
        orbits = [spec.frame_orbit() for spec in sequence.frame_specs()]
        assert orbits == [0.0, 15.0, 30.0]

    def test_sequence_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            SceneSequence.from_value(
                {"sequence": "saturation", "frames": 2, "orbit": 10.0}
            )

    def test_sequence_needs_two_frames(self):
        with pytest.raises(ValueError, match="at least 2"):
            SceneSequence.from_value({"sequence": "saturation", "frames": 1})

    def test_sequence_out_of_range_end_knob_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            SceneSequence.from_value(
                {
                    "sequence": "saturation",
                    "frames": 2,
                    "knobs": {"level": 0.5},
                    "end_knobs": {"level": 1.5},
                }
            )
