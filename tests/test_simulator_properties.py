"""Property-based tests on simulator invariants over synthetic kernels.

Rather than tracing scenes, these tests generate small synthetic warp
programs directly and check conservation laws the simulator must satisfy
for any input.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (
    MOBILE_SOC,
    ComputeOp,
    CycleSimulator,
    StoreOp,
    TraceOp,
    WarpTask,
)
from repro.scene.scene import AddressMap

AMAP = AddressMap()


@st.composite
def warp_tasks(draw):
    """A list of 1-6 synthetic warps with random compute/trace/store ops."""
    n_warps = draw(st.integers(min_value=1, max_value=6))
    tasks = []
    for warp_id in range(n_warps):
        lanes = draw(st.integers(min_value=1, max_value=8))
        ops = []
        setup = tuple(
            draw(st.integers(min_value=1, max_value=30)) for _ in range(lanes)
        )
        ops.append(ComputeOp(setup))
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            nodes = tuple(
                draw(
                    st.one_of(
                        st.none(),
                        st.lists(
                            st.integers(min_value=0, max_value=500),
                            min_size=1,
                            max_size=20,
                        ),
                    )
                )
                for _ in range(lanes)
            )
            tris = tuple(
                None if n is None else [] for n in nodes
            )
            ops.append(TraceOp(nodes, tris))
            ops.append(
                ComputeOp(
                    tuple(
                        0 if n is None else draw(st.integers(1, 20))
                        for n in nodes
                    )
                )
            )
        ops.append(
            StoreOp(tuple(0x8000_0000 + 16 * lane for lane in range(lanes)))
        )
        live = lanes
        tasks.append(
            WarpTask(
                warp_id=warp_id,
                pixels=tuple((lane, warp_id) for lane in range(lanes)),
                ops=ops,
                live_pixels=live,
                filtered_pixels=0,
            )
        )
    return tasks


@settings(max_examples=30, deadline=None)
@given(warp_tasks())
def test_instruction_conservation(tasks):
    """Executed instructions equal the programs' static totals."""
    stats = CycleSimulator(MOBILE_SOC, AMAP).run(tasks)
    expected = sum(task.instruction_count() for task in tasks)
    assert stats.instructions == expected


@settings(max_examples=30, deadline=None)
@given(warp_tasks())
def test_cycles_cover_the_longest_program(tasks):
    """The run is at least as long as any single warp's issue demand."""
    stats = CycleSimulator(MOBILE_SOC, AMAP).run(tasks)
    longest = max(
        sum(
            op.issue_cycles() if isinstance(op, ComputeOp) else 1
            for op in task.ops
        )
        for task in tasks
    )
    assert stats.cycles >= longest


@settings(max_examples=30, deadline=None)
@given(warp_tasks())
def test_rt_accounting_consistent(tasks):
    """RT steps equal the lock-step maxima of the trace ops; efficiency is
    bounded by lane counts."""
    stats = CycleSimulator(MOBILE_SOC, AMAP).run(tasks)
    expected_steps = sum(
        op.max_node_steps()
        for task in tasks
        for op in task.ops
        if isinstance(op, TraceOp) and op.active_lanes() > 0
    )
    assert stats.rt_traversal_steps == expected_steps
    if expected_steps:
        assert 0.0 < stats.rt_efficiency <= 32.0


@settings(max_examples=30, deadline=None)
@given(warp_tasks())
def test_memory_hierarchy_conservation(tasks):
    """L2 accesses never exceed L1 misses plus stores; DRAM data is
    bounded by what the channels could move in the simulated time."""
    stats = CycleSimulator(MOBILE_SOC, AMAP).run(tasks)
    assert stats.l1d_misses <= stats.l1d_accesses
    store_lines_upper = sum(
        op.active_lanes()
        for task in tasks
        for op in task.ops
        if isinstance(op, StoreOp)
    )
    assert stats.l2_accesses <= stats.l1d_misses + store_lines_upper
    if stats.cycles > 0:
        capacity = stats.cycles * stats.dram_channels
        assert stats.dram_data_cycles <= capacity + 1e-6


@settings(max_examples=20, deadline=None)
@given(warp_tasks())
def test_determinism_property(tasks):
    sim = CycleSimulator(MOBILE_SOC, AMAP)
    a, b = sim.run(tasks), sim.run(tasks)
    assert a.cycles == b.cycles and a.work_units == b.work_units
