"""Tests for rays, AABBs and triangles."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scene.geometry import AABB, Ray, Triangle
from repro.scene.vecmath import vec3

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)


def unit_ray(origin, direction):
    d = np.asarray(direction, dtype=np.float64)
    return Ray(origin=np.asarray(origin, dtype=np.float64), direction=d / np.linalg.norm(d))


class TestRay:
    def test_at_advances_along_direction(self):
        ray = unit_ray([0, 0, 0], [1, 0, 0])
        assert np.allclose(ray.at(2.5), [2.5, 0, 0])

    def test_inv_direction_handles_zero_components(self):
        ray = unit_ray([0, 0, 0], [1, 0, 0])
        inv = ray.inv_direction()
        assert inv[0] == 1.0
        assert math.isinf(inv[1]) and math.isinf(inv[2])


class TestAABB:
    def test_empty_box_is_empty(self):
        assert AABB.empty().is_empty()
        assert AABB.empty().surface_area() == 0.0

    def test_union_encloses_both(self):
        a = AABB(vec3(0, 0, 0), vec3(1, 1, 1))
        b = AABB(vec3(2, -1, 0), vec3(3, 0.5, 2))
        u = a.union(b)
        assert u.contains_box(a) and u.contains_box(b)

    def test_union_with_empty_is_identity(self):
        a = AABB(vec3(0, 0, 0), vec3(1, 2, 3))
        u = AABB.empty().union(a)
        assert np.allclose(u.lo, a.lo) and np.allclose(u.hi, a.hi)

    def test_contains_point(self):
        box = AABB(vec3(0, 0, 0), vec3(1, 1, 1))
        assert box.contains(vec3(0.5, 0.5, 0.5))
        assert not box.contains(vec3(1.5, 0.5, 0.5))

    def test_surface_area_unit_cube(self):
        assert AABB(vec3(0, 0, 0), vec3(1, 1, 1)).surface_area() == 6.0

    def test_longest_axis(self):
        assert AABB(vec3(0, 0, 0), vec3(5, 1, 1)).longest_axis() == 0
        assert AABB(vec3(0, 0, 0), vec3(1, 1, 7)).longest_axis() == 2

    def test_ray_intersects_box_ahead(self):
        box = AABB(vec3(1, -1, -1), vec3(2, 1, 1))
        ray = unit_ray([0, 0, 0], [1, 0, 0])
        assert box.intersect(ray, ray.inv_direction(), float("inf"))

    def test_ray_misses_box_behind(self):
        box = AABB(vec3(1, -1, -1), vec3(2, 1, 1))
        ray = unit_ray([0, 0, 0], [-1, 0, 0])
        assert not box.intersect(ray, ray.inv_direction(), float("inf"))

    def test_ray_respects_t_max(self):
        box = AABB(vec3(10, -1, -1), vec3(11, 1, 1))
        ray = unit_ray([0, 0, 0], [1, 0, 0])
        assert not box.intersect(ray, ray.inv_direction(), 5.0)

    @given(st.tuples(coord, coord, coord), st.tuples(coord, coord, coord))
    def test_union_is_commutative(self, p, q):
        a = AABB.empty().union_point(np.array(p))
        b = AABB.empty().union_point(np.array(q))
        u1, u2 = a.union(b), b.union(a)
        assert np.allclose(u1.lo, u2.lo) and np.allclose(u1.hi, u2.hi)


class TestTriangle:
    def make(self):
        return Triangle(vec3(0, 0, 0), vec3(1, 0, 0), vec3(0, 1, 0))

    def test_normal_is_unit_and_perpendicular(self):
        tri = self.make()
        assert np.allclose(tri.normal, [0, 0, 1])

    def test_area(self):
        assert self.make().area() == pytest.approx(0.5)

    def test_bounds_enclose_vertices(self):
        tri = self.make()
        b = tri.bounds()
        for v in (tri.v0, tri.v1, tri.v2):
            assert b.contains(v)

    def test_centroid(self):
        assert np.allclose(self.make().centroid(), [1 / 3, 1 / 3, 0])

    def test_hit_through_center(self):
        tri = self.make()
        ray = unit_ray([0.25, 0.25, -1], [0, 0, 1])
        hit = tri.intersect(ray, float("inf"), index=7)
        assert hit is not None
        assert hit.t == pytest.approx(1.0)
        assert hit.primitive_index == 7
        # The normal faces the incoming ray.
        assert hit.normal[2] == pytest.approx(-1.0)

    def test_miss_outside_edges(self):
        tri = self.make()
        ray = unit_ray([0.9, 0.9, -1], [0, 0, 1])
        assert tri.intersect(ray, float("inf"), 0) is None

    def test_parallel_ray_misses(self):
        tri = self.make()
        ray = unit_ray([0, 0, 1], [1, 0, 0])
        assert tri.intersect(ray, float("inf"), 0) is None

    def test_t_max_cuts_off_hit(self):
        tri = self.make()
        ray = unit_ray([0.25, 0.25, -10], [0, 0, 1])
        assert tri.intersect(ray, 5.0, 0) is None

    def test_degenerate_triangle_never_hit(self):
        tri = Triangle(vec3(0, 0, 0), vec3(1, 0, 0), vec3(2, 0, 0))
        ray = unit_ray([0.5, 0, -1], [0, 0, 1])
        assert tri.intersect(ray, float("inf"), 0) is None

    @given(
        st.floats(min_value=0.05, max_value=0.4),
        st.floats(min_value=0.05, max_value=0.4),
    )
    def test_interior_points_always_hit(self, u, v):
        tri = self.make()
        point = tri.v0 * (1 - u - v) + tri.v1 * u + tri.v2 * v
        ray = unit_ray([point[0], point[1], -3], [0, 0, 1])
        hit = tri.intersect(ray, float("inf"), 0)
        assert hit is not None
        assert np.allclose(hit.point[:2], point[:2], atol=1e-9)
