"""Tests for extrapolation (step 6 / §IV-F) and combination (step 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    combine_group_metrics,
    exponential_regression,
    fit_power_law,
    linear_extrapolate,
    power_law,
)
from repro.gpu import METRICS, SimulationStats


def stats_with(cycles=1000.0, instructions=5000):
    return SimulationStats(
        cycles=cycles,
        instructions=instructions,
        l1d_accesses=100,
        l1d_misses=10,
        l2_accesses=50,
        l2_misses=20,
        rt_traversal_steps=40,
        rt_active_ray_steps=400,
        dram_requests=5,
        dram_data_cycles=40.0,
        dram_pending_cycles=200.0,
        dram_channels=4,
    )


class TestLinearExtrapolation:
    def test_cycles_scale_inverse_to_fraction(self):
        predicted = linear_extrapolate(stats_with(), 0.1)
        # The paper's worked example: 100,000 cycles at 10% -> 1,000,000.
        assert predicted["cycles"] == pytest.approx(10_000.0)

    def test_rates_pass_through(self):
        stats = stats_with()
        predicted = linear_extrapolate(stats, 0.25)
        assert predicted["l1d_miss_rate"] == stats.l1d_miss_rate
        assert predicted["l2_miss_rate"] == stats.l2_miss_rate
        assert predicted["rt_efficiency"] == stats.rt_efficiency

    def test_ipc_self_normalizing(self):
        stats = stats_with()
        predicted = linear_extrapolate(stats, 0.5)
        assert predicted["ipc"] == pytest.approx(stats.ipc)

    def test_identity_at_full_fraction(self):
        stats = stats_with()
        predicted = linear_extrapolate(stats, 1.0)
        for name in METRICS:
            assert predicted[name] == pytest.approx(stats.metric(name))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            linear_extrapolate(stats_with(), 0.0)
        with pytest.raises(ValueError):
            linear_extrapolate(stats_with(), 1.2)

    @given(st.floats(min_value=0.01, max_value=1.0))
    def test_property_all_metrics_finite(self, fraction):
        predicted = linear_extrapolate(stats_with(), fraction)
        assert all(np.isfinite(v) for v in predicted.values())


class TestExponentialRegression:
    def metrics_at(self, fraction, true_value=1000.0, bias=500.0, decay=4.0):
        """Synthetic metric converging exponentially to true_value."""
        value = true_value + bias * np.exp(-decay * fraction)
        return {name: value for name in METRICS}

    def test_recovers_saturating_trend(self):
        samples = [
            (f, self.metrics_at(f)) for f in (0.2, 0.3, 0.4)
        ]
        predicted = exponential_regression(samples)
        truth = self.metrics_at(1.0)["cycles"]
        assert predicted["cycles"] == pytest.approx(truth, rel=0.05)

    def test_needs_three_samples(self):
        with pytest.raises(ValueError):
            exponential_regression([(0.2, self.metrics_at(0.2))])

    def test_degenerate_samples_fall_back(self):
        constant = {name: 5.0 for name in METRICS}
        samples = [(0.2, constant), (0.3, constant), (0.4, constant)]
        predicted = exponential_regression(samples)
        assert predicted["cycles"] == pytest.approx(5.0, rel=0.2)

    def test_output_finite(self):
        rng = np.random.default_rng(0)
        samples = [
            (f, {name: float(rng.uniform(1, 100)) for name in METRICS})
            for f in (0.2, 0.3, 0.4)
        ]
        predicted = exponential_regression(samples)
        assert all(np.isfinite(v) for v in predicted.values())


class TestPowerLaw:
    def test_fit_recovers_paper_equation(self):
        # Equation (4): speedup = 181 * perc^-1.15.
        percs = np.array([10.0, 20.0, 40.0, 80.0])
        speedups = power_law(percs, 181.0, -1.15)
        a, b = fit_power_law(percs, speedups)
        assert a == pytest.approx(181.0, rel=1e-6)
        assert b == pytest.approx(-1.15, abs=1e-9)

    def test_fit_with_noise_close(self):
        rng = np.random.default_rng(1)
        percs = np.linspace(10, 90, 9)
        speedups = power_law(percs, 50.0, -1.0) * rng.uniform(0.9, 1.1, 9)
        a, b = fit_power_law(percs, speedups)
        assert b == pytest.approx(-1.0, abs=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([10.0]), np.array([5.0]))
        with pytest.raises(ValueError):
            fit_power_law(np.array([10.0, -1.0]), np.array([5.0, 2.0]))


class TestCombine:
    def test_paper_ipc_example(self):
        # Section III-H: group IPCs 20 and 50 combine to 70; L1D miss
        # rates 0.70 and 0.60 average to 0.65.
        g1 = {name: 0.0 for name in METRICS}
        g2 = {name: 0.0 for name in METRICS}
        g1.update(ipc=20.0, l1d_miss_rate=0.70)
        g2.update(ipc=50.0, l1d_miss_rate=0.60)
        combined = combine_group_metrics([g1, g2])
        assert combined["ipc"] == pytest.approx(70.0)
        assert combined["l1d_miss_rate"] == pytest.approx(0.65)

    def test_cycles_average(self):
        groups = [
            {name: v for name in METRICS} for v in (100.0, 200.0, 300.0)
        ]
        assert combine_group_metrics(groups)["cycles"] == pytest.approx(200.0)

    def test_single_group_identity_except_nothing(self):
        group = {name: 3.0 for name in METRICS}
        assert combine_group_metrics([group]) == group

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_group_metrics([])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=8))
    def test_property_combined_within_group_bounds_for_rates(self, values):
        groups = [{name: v for name in METRICS} for v in values]
        combined = combine_group_metrics(groups)
        assert min(values) - 1e-9 <= combined["l2_miss_rate"] <= max(values) + 1e-9
        assert combined["ipc"] == pytest.approx(sum(values))


class TestDegradedCombine:
    def test_full_coverage_matches_plain_combine(self):
        from repro.core import combine_degraded_metrics

        groups = [{name: float(v) for name in METRICS} for v in (10, 20, 30, 40)]
        assert combine_degraded_metrics(groups, 1.0) == combine_group_metrics(
            groups
        )

    def test_throughput_rescaled_by_coverage(self):
        from repro.core import combine_degraded_metrics

        survivors = [{name: 10.0 for name in METRICS} for _ in range(3)]
        combined = combine_degraded_metrics(survivors, 0.75)
        # IPC sums to 30 over 75% of the plane -> 40 projected to the full
        # plane; rate/absolute metrics stay at the survivor average.
        assert combined["ipc"] == pytest.approx(40.0)
        assert combined["cycles"] == pytest.approx(10.0)
        assert combined["l1d_miss_rate"] == pytest.approx(10.0)

    def test_no_survivors_raises_degraded_error(self):
        from repro.core import combine_degraded_metrics
        from repro.errors import DegradedResultError

        with pytest.raises(DegradedResultError):
            combine_degraded_metrics([], 0.5)

    def test_bad_coverage_rejected(self):
        from repro.core import combine_degraded_metrics

        group = [{name: 1.0 for name in METRICS}]
        for coverage in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                combine_degraded_metrics(group, coverage)
