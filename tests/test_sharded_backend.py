"""Sharded parallel simulator backend: determinism, drift, degeneracy.

Three properties make the sharded backend shippable:

1. **Determinism** — fork workers and the in-process fallback run the
   same lock-step epoch protocol, so they must produce *identical*
   stats, and repeated runs must too.
2. **Bounded drift** — private L2/DRAM partitions drift timing-derived
   metrics versus the exact serial engine (the same systematic bias as
   the paper's Section III-G group splitting).  The measured envelope
   over all eight paper scenes and both schedulers, with headroom, is
   asserted here at 48x48; additive counters must stay *exact*.
3. **Degenerate exactness** — configs whose SM/partition counts are
   coprime (the downscaled predict GPUs) plan one shard and fall back to
   the serial engine, byte-identical by construction.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.gpu import MOBILE_SOC, CycleSimulator, ShardedCycleSimulator, compile_kernel
from repro.gpu.parallel import (
    DRIFT_TOLERANCE,
    EXACT_COUNTERS,
    MAX_PENALTY_FRACTION,
    epoch_penalty,
    plan_shards,
)
from repro.gpu.simulator import make_simulator
from repro.gpu.stats import SimulationStats, merge_simulation_stats
from repro.scene.library import SCENE_NAMES, make_scene
from repro.tracer import FunctionalTracer, RenderSettings


def _warps(scene, width=48, height=48, seed=0):
    settings = RenderSettings(
        width=width, height=height, samples_per_pixel=1, seed=seed
    )
    frame = FunctionalTracer(scene, settings).trace_frame()
    return compile_kernel(frame, settings.all_pixels(), scene.addresses)


def _rel_drift(sharded: float, exact: float) -> float:
    return abs(sharded - exact) / max(abs(exact), 1e-12)


def _strip_wallclock(stats: SimulationStats) -> SimulationStats:
    return replace(stats, host_seconds=0.0)


class TestShardPlanning:
    def test_caps_at_component_gcd(self):
        assert plan_shards(MOBILE_SOC) == 4  # gcd(8 SMs, 4 partitions)
        assert plan_shards(replace(MOBILE_SOC, sim_shards=2)) == 2
        assert plan_shards(replace(MOBILE_SOC, sim_shards=64)) == 4

    def test_rounds_down_to_a_divisor(self):
        # gcd=4, request 3: 3 does not divide 4, so the plan drops to 2.
        assert plan_shards(replace(MOBILE_SOC, sim_shards=3)) == 2

    def test_coprime_counts_plan_single_shard(self):
        # The scaled predict GPUs: mobile at K=4 has 2 SMs / 1 partition.
        assert plan_shards(MOBILE_SOC.downscale(4)) == 1


class TestEpochPenalty:
    def test_balanced_traffic_is_free(self):
        # foreign == (shards-1) * own is exactly the balanced share.
        assert epoch_penalty(100, 300, 4, 1, 4.0, 2048) == 0.0
        assert epoch_penalty(100, 250, 4, 1, 4.0, 2048) == 0.0

    def test_excess_charged_at_service_rate_per_channel(self):
        # 100 - 1*20 = 80 excess lines at 4 cycles/line over 2 channels.
        assert epoch_penalty(20, 100, 2, 2, 4.0, 2048) == 160.0

    def test_capped_at_epoch_fraction(self):
        huge = epoch_penalty(0, 10**9, 2, 1, 4.0, 2048)
        assert huge == 2048 * MAX_PENALTY_FRACTION

    def test_idle_shard_pays_for_foreign_traffic(self):
        assert epoch_penalty(0, 10, 4, 1, 4.0, 2048) == 40.0


class TestDeterminism:
    def test_fork_and_inprocess_identical(self, small_scene):
        warps = _warps(small_scene, width=32, height=32)
        config = replace(MOBILE_SOC, sim_backend="sharded", sim_shards=4)
        forked = ShardedCycleSimulator(
            config, small_scene.addresses, in_process=False
        ).run(list(warps))
        local = ShardedCycleSimulator(
            config, small_scene.addresses, in_process=True
        ).run(list(warps))
        assert _strip_wallclock(forked) == _strip_wallclock(local)

    def test_repeat_runs_identical(self, small_scene):
        warps = _warps(small_scene, width=32, height=32)
        config = replace(MOBILE_SOC, sim_backend="sharded", sim_shards=4)
        sim = ShardedCycleSimulator(config, small_scene.addresses)
        first = _strip_wallclock(sim.run(list(warps)))
        second = _strip_wallclock(sim.run(list(warps)))
        assert first == second

    def test_last_run_reports_plan(self, small_scene):
        warps = _warps(small_scene, width=32, height=32)
        config = replace(MOBILE_SOC, sim_backend="sharded", sim_shards=4)
        sim = ShardedCycleSimulator(config, small_scene.addresses)
        stats = sim.run(warps)
        run = sim.last_run
        assert run["shards"] == 4
        assert run["epochs"] >= 1
        assert len(run["shard_work_units"]) == 4
        assert sum(run["shard_work_units"]) == stats.work_units
        assert stats.sim_backend == "sharded"


class TestDegenerateExactness:
    def test_coprime_config_matches_serial_byte_identical(self, small_scene):
        warps = _warps(small_scene, width=32, height=32)
        scaled = MOBILE_SOC.downscale(4)  # 2 SMs / 1 partition: gcd 1
        serial = CycleSimulator(scaled, small_scene.addresses).run(list(warps))
        sharded_config = replace(scaled, sim_backend="sharded")
        sim = ShardedCycleSimulator(sharded_config, small_scene.addresses)
        sharded = sim.run(list(warps))
        assert sim.last_run["mode"] == "serial-fallback"
        assert sharded.sim_backend == "sharded"
        # Everything but the provenance label and wall clock is identical.
        assert _strip_wallclock(
            replace(sharded, sim_backend="serial")
        ) == _strip_wallclock(serial)

    def test_empty_workload_falls_back(self, small_scene):
        config = replace(MOBILE_SOC, sim_backend="sharded")
        sim = ShardedCycleSimulator(config, small_scene.addresses)
        stats = sim.run([])
        assert stats.sim_backend == "sharded"
        assert sim.last_run["mode"] == "serial-fallback"

    def test_make_simulator_dispatch(self, small_scene):
        sharded = make_simulator(
            replace(MOBILE_SOC, sim_backend="sharded"), small_scene.addresses
        )
        assert isinstance(sharded, ShardedCycleSimulator)
        serial = make_simulator(MOBILE_SOC, small_scene.addresses)
        assert isinstance(serial, CycleSimulator)


class TestDriftEnvelope:
    """Exact counters stay exact; timing drift stays inside the envelope."""

    @pytest.mark.parametrize("scheduler", ["gto", "lrr"])
    @pytest.mark.parametrize("scene_name", SCENE_NAMES)
    def test_drift_within_documented_tolerance(self, scene_name, scheduler):
        scene = make_scene(scene_name)
        warps = _warps(scene)
        base = replace(MOBILE_SOC, warp_scheduler=scheduler)
        exact = CycleSimulator(base, scene.addresses).run(list(warps))
        sim = ShardedCycleSimulator(
            replace(base, sim_backend="sharded", sim_shards=4),
            scene.addresses,
            in_process=True,
        )
        sharded = sim.run(list(warps))
        assert sim.last_run["shards"] == 4

        for name in EXACT_COUNTERS:
            assert getattr(sharded, name) == getattr(exact, name), name
        # Ratios of exact counters are exact too.
        assert sharded.simd_efficiency == pytest.approx(exact.simd_efficiency)
        assert sharded.rt_efficiency == pytest.approx(exact.rt_efficiency)

        for name, tolerance in DRIFT_TOLERANCE.items():
            drift = _rel_drift(getattr(sharded, name), getattr(exact, name))
            assert drift <= tolerance, (
                f"{scene_name}/{scheduler}: {name} drift {drift:.3f} "
                f"exceeds documented tolerance {tolerance}"
            )


class TestStatsProvenance:
    def test_merge_inherits_backend(self):
        a = SimulationStats(sim_backend="serial")
        b = SimulationStats()
        merged = merge_simulation_stats([b, a])
        assert merged.sim_backend == "serial"

    def test_merge_rejects_mixed_backends(self):
        a = SimulationStats(sim_backend="serial")
        b = SimulationStats(sim_backend="sharded")
        with pytest.raises(ValueError, match="different simulator backends"):
            merge_simulation_stats([a, b])


class TestConfigValidation:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown sim backend"):
            replace(MOBILE_SOC, sim_backend="gpu")

    def test_rejects_nonpositive_knobs(self):
        with pytest.raises(ValueError):
            replace(MOBILE_SOC, sim_shards=0)
        with pytest.raises(ValueError):
            replace(MOBILE_SOC, sim_epoch_cycles=0)
