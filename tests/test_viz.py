"""Tests for the visualization helpers (PPM I/O and ASCII charts)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.viz import bar_chart, line_chart, read_ppm, sparkline, write_ppm


class TestPPM:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        image = rng.uniform(size=(5, 7, 3))
        path = write_ppm(tmp_path / "x.ppm", image)
        back = read_ppm(path)
        assert back.shape == image.shape
        assert np.abs(back - image).max() <= 1.0 / 255.0 + 1e-9

    def test_clipping(self, tmp_path):
        image = np.array([[[2.0, -1.0, 0.5]]])
        back = read_ppm(write_ppm(tmp_path / "clip.ppm", image))
        assert back[0, 0, 0] == 1.0
        assert back[0, 0, 1] == 0.0

    def test_bad_shape_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "bad.ppm", np.zeros((4, 4)))

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"P3 1 1 255\n000")
        with pytest.raises(ValueError):
            read_ppm(path)

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "trunc.ppm"
        path.write_bytes(b"P6 2 2 255\nxxx")
        with pytest.raises(ValueError):
            read_ppm(path)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=16))
    def test_property_roundtrip_any_size(self, tmp_path_factory, w, h):
        tmp = tmp_path_factory.mktemp("ppm")
        image = np.linspace(0, 1, w * h * 3).reshape(h, w, 3)
        back = read_ppm(write_ppm(tmp / "img.ppm", image))
        assert back.shape == (h, w, 3)


class TestSparkline:
    def test_monotone_values(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] != line[-1]

    def test_empty_and_nan(self):
        assert sparkline([]) == ""
        assert "?" in sparkline([1.0, float("nan"), 2.0])

    def test_constant_series(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1


class TestBarChart:
    def test_basic_render(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10, title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert lines[2].count("#") > lines[1].count("#")

    def test_alignment_and_values(self):
        chart = bar_chart(["x", "y"], [3.0, 1.5], unit="s")
        assert "3s" in chart and "1.5s" in chart

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_zero_and_inf(self):
        chart = bar_chart(["z", "i"], [0.0, float("inf")])
        assert "inf" in chart


class TestLineChart:
    def test_renders_all_series_markers(self):
        chart = line_chart(
            [1, 2, 3],
            {"alpha": [1, 2, 3], "beta": [3, 2, 1]},
            height=6,
            width=20,
        )
        assert "a" in chart and "b" in chart
        assert "a=alpha" in chart

    def test_log_scale_handles_decay(self):
        xs = [10, 20, 40, 80]
        ys = [1000.0, 100.0, 10.0, 1.0]
        chart = line_chart(xs, {"err": ys}, log_y=True)
        assert "1e+03" in chart or "1000" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([], {})
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1.0]})

    def test_constant_series_no_crash(self):
        chart = line_chart([1, 2], {"flat": [5.0, 5.0]})
        assert "f" in chart
