"""BVH construction and traversal tests, including the brute-force oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scene.bvh import BVH, TraversalRecord, build_bvh
from repro.scene.geometry import Ray, Triangle
from repro.scene.meshes import icosphere, random_blob_field
from repro.scene.vecmath import vec3


def random_triangles(rng: np.random.Generator, count: int) -> list[Triangle]:
    tris = []
    for _ in range(count):
        base = rng.uniform(-5, 5, size=3)
        tris.append(
            Triangle(
                base,
                base + rng.uniform(-1, 1, size=3),
                base + rng.uniform(-1, 1, size=3),
            )
        )
    return tris


def brute_force_hit(triangles, ray):
    best = None
    t_max = ray.t_max
    for i, tri in enumerate(triangles):
        hit = tri.intersect(ray, t_max, i)
        if hit is not None:
            best = hit
            t_max = hit.t
    return best


def make_ray(origin, target):
    d = np.asarray(target, dtype=np.float64) - np.asarray(origin, dtype=np.float64)
    return Ray(
        origin=np.asarray(origin, dtype=np.float64),
        direction=d / np.linalg.norm(d),
    )


@pytest.fixture(scope="module", params=["sah", "median"])
def built(request, ):
    rng = np.random.default_rng(42)
    tris = random_triangles(rng, 120)
    return tris, build_bvh(tris, method=request.param)


class TestBuild:
    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            build_bvh([])

    def test_unknown_method_rejected(self):
        tris = icosphere(vec3(0, 0, 0), 1.0)
        with pytest.raises(ValueError):
            build_bvh(tris, method="bogus")

    def test_primitive_order_is_permutation(self, built):
        tris, bvh = built
        assert sorted(bvh.primitive_order) == list(range(len(tris)))

    def test_leaf_ranges_cover_all_primitives_once(self, built):
        _, bvh = built
        covered = []
        for node in bvh.nodes:
            if node.is_leaf:
                covered.extend(range(node.first, node.first + node.count))
        assert sorted(covered) == list(range(len(bvh.primitive_order)))

    def test_child_bounds_nested_in_parent(self, built):
        _, bvh = built
        for node in bvh.nodes:
            if not node.is_leaf:
                assert node.bounds.contains_box(bvh.nodes[node.left].bounds)
                assert node.bounds.contains_box(bvh.nodes[node.right].bounds)

    def test_leaves_contain_their_primitives(self, built):
        tris, bvh = built
        for node in bvh.nodes:
            if node.is_leaf:
                for slot in range(node.first, node.first + node.count):
                    tri = tris[bvh.primitive_order[slot]]
                    assert node.bounds.contains_box(tri.bounds(), tol=1e-6)

    def test_depth_reasonable(self, built):
        tris, bvh = built
        # A sane tree over n primitives is far shallower than n.
        assert bvh.depth() <= 4 * int(np.ceil(np.log2(len(tris)))) + 4

    def test_leaf_size_respected(self):
        rng = np.random.default_rng(7)
        tris = random_triangles(rng, 64)
        bvh = build_bvh(tris, leaf_size=2)
        degenerate_ok = 8  # coincident centroids may force larger leaves
        for node in bvh.nodes:
            if node.is_leaf:
                assert node.count <= max(2, degenerate_ok)

    def test_single_triangle(self):
        tris = [Triangle(vec3(0, 0, 0), vec3(1, 0, 0), vec3(0, 1, 0))]
        bvh = build_bvh(tris)
        assert len(bvh.nodes) == 1 and bvh.root.is_leaf

    def test_coincident_centroids_terminate(self):
        # All triangles share a centroid: the builder must not recurse
        # forever and must produce one leaf holding everything.
        tris = [
            Triangle(vec3(-1, -1, i * 0.0), vec3(2, -1, 0), vec3(-1, 2, 0))
            for i in range(10)
        ]
        bvh = build_bvh(tris)
        assert bvh.root.is_leaf
        assert bvh.root.count == 10


class TestTraversal:
    def test_matches_brute_force_on_grid_of_rays(self, built):
        tris, bvh = built
        rng = np.random.default_rng(3)
        for _ in range(200):
            origin = rng.uniform(-8, 8, size=3)
            target = rng.uniform(-4, 4, size=3)
            ray = make_ray(origin, target)
            expected = brute_force_hit(tris, ray)
            actual = bvh.intersect(ray)
            if expected is None:
                assert actual is None
            else:
                assert actual is not None
                assert actual.t == pytest.approx(expected.t, rel=1e-9)
                assert actual.primitive_index == expected.primitive_index

    def test_occluded_agrees_with_intersect(self, built):
        tris, bvh = built
        rng = np.random.default_rng(5)
        for _ in range(100):
            ray = make_ray(rng.uniform(-8, 8, size=3), rng.uniform(-4, 4, size=3))
            assert bvh.occluded(ray) == (bvh.intersect(ray) is not None)

    def test_record_collects_root_first(self, built):
        _, bvh = built
        ray = make_ray([0, 0, -20], [0, 0, 0])
        record = TraversalRecord()
        bvh.intersect(ray, record)
        assert record.nodes_visited[0] == 0

    def test_recorded_triangles_include_the_hit(self, built):
        tris, bvh = built
        rng = np.random.default_rng(11)
        for _ in range(50):
            ray = make_ray(rng.uniform(-8, 8, size=3), rng.uniform(-4, 4, size=3))
            record = TraversalRecord()
            hit = bvh.intersect(ray, record)
            if hit is not None:
                assert hit.primitive_index in record.tris_tested

    def test_t_max_limits_hits(self, built):
        tris, bvh = built
        ray = make_ray([0, 0, -50], [0, 0, 0])
        hit = bvh.intersect(ray)
        if hit is not None:
            short = Ray(
                origin=ray.origin, direction=ray.direction, t_max=hit.t * 0.5
            )
            assert bvh.intersect(short) is None

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_random_rays_match_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        tris = random_triangles(rng, 30)
        bvh = build_bvh(tris)
        ray = make_ray(rng.uniform(-8, 8, size=3), rng.uniform(-3, 3, size=3))
        expected = brute_force_hit(tris, ray)
        actual = bvh.intersect(ray)
        assert (expected is None) == (actual is None)
        if expected is not None:
            assert actual.t == pytest.approx(expected.t, rel=1e-9)


class TestSceneMeshes:
    def test_blob_field_traversal_consistency(self):
        rng = np.random.default_rng(0)
        tris = random_blob_field(5, 4.0, (0.3, 0.8), rng)
        bvh = build_bvh(tris)
        ray = make_ray([0, 5, 10], [0, 0.5, 0])
        expected = brute_force_hit(tris, ray)
        actual = bvh.intersect(ray)
        assert (expected is None) == (actual is None)
        if expected:
            assert actual.primitive_index == expected.primitive_index
