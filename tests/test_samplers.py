"""Tests for the pluggable sampling engine (step 5 as a design space)."""

import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import Heatmap, Zatel, ZatelConfig, quantize_heatmap, select_pixels
from repro.core.samplers import (
    SAMPLER_NAMES,
    HeatmapKMeansSampler,
    RankedSetSampler,
    TwoPhaseStratifiedSampler,
    make_sampler,
    replicate_mean_and_variance,
)
from repro.core.stages.fingerprint import stable_hash
from repro.core.stages.requests import PredictSpec, spec_fingerprint
from repro.gpu import MOBILE_SOC
from repro.harness.service import result_payload
from repro.service.protocol import parse_predict_payload
from tests.test_heatmap_quantize import synthetic_frame

REPLICATE_SAMPLERS = ("ranked_set", "two_phase")


@pytest.fixture(scope="module")
def quantized():
    frame = synthetic_frame(width=32, height=8, hot_column=16, spread=60)
    hm = Heatmap.from_frame(frame, warp_width=0)
    return quantize_heatmap(hm, num_colors=4, seed=0)


@pytest.fixture(scope="module")
def plane_pixels():
    return [(x, y) for y in range(8) for x in range(32)]


def design_digest(design) -> str:
    """A process-stable digest of a :class:`SampleDesign`."""
    return stable_hash(
        tuple(tuple(sorted(subset)) for subset in design.replicates),
        design.fractions,
        design.sampler,
        tuple(sorted(design.params.items())),
        design.seed,
    )


class TestSampleDesign:
    @pytest.mark.parametrize("name", SAMPLER_NAMES)
    def test_design_invariants(self, quantized, plane_pixels, name):
        sampler = make_sampler(ZatelConfig(sampler=name, replicates=3))
        design = sampler.design(quantized, plane_pixels, 0.5, seed=3)
        assert design.sampler == name
        assert design.replicate_count == len(design.fractions)
        universe = set(plane_pixels)
        for subset, fraction in zip(design.replicates, design.fractions):
            assert subset and subset <= universe
            assert 0.0 < fraction <= 1.0

    def test_heatmap_design_matches_historical_selection(
        self, quantized, plane_pixels
    ):
        # The default sampler *is* the paper's quota selection: one
        # replicate, nominal fraction, identical pixel set per seed.
        sampler = HeatmapKMeansSampler()
        design = sampler.design(quantized, plane_pixels, 0.5, seed=9)
        assert design.replicate_count == 1
        assert design.fractions == (0.5,)
        assert design.replicates[0] == frozenset(
            select_pixels(quantized, plane_pixels, 0.5, seed=9)
        )

    @pytest.mark.parametrize("name", REPLICATE_SAMPLERS)
    def test_replicates_draw_the_full_budget(
        self, quantized, plane_pixels, name
    ):
        # Full-budget repeated subsampling: every replicate approximates
        # fraction * len(pixels) on its own (never fraction / R).
        sampler = make_sampler(ZatelConfig(sampler=name, replicates=4))
        design = sampler.design(quantized, plane_pixels, 0.5, seed=0)
        target = 0.5 * len(plane_pixels)
        for subset in design.replicates:
            assert len(subset) >= target / 2

    def test_replicate_draws_are_not_all_identical(
        self, quantized, plane_pixels
    ):
        # Regression: a one-block budget used to pick the same RSS rank
        # (hence the same block) in every replicate — zero variance.
        sampler = RankedSetSampler(replicates=5)
        design = sampler.design(quantized, plane_pixels, 0.25, seed=0)
        assert len(set(design.replicates)) > 1


class TestDeterminism:
    @pytest.mark.parametrize("name", SAMPLER_NAMES)
    def test_same_seed_same_design(self, quantized, plane_pixels, name):
        sampler = make_sampler(ZatelConfig(sampler=name, replicates=3))
        a = sampler.design(quantized, plane_pixels, 0.5, seed=21)
        b = sampler.design(quantized, plane_pixels, 0.5, seed=21)
        assert a == b
        assert design_digest(a) == design_digest(b)

    @pytest.mark.parametrize("name", REPLICATE_SAMPLERS)
    def test_seeds_vary_the_design(self, quantized, plane_pixels, name):
        sampler = make_sampler(ZatelConfig(sampler=name, replicates=3))
        digests = {
            design_digest(sampler.design(quantized, plane_pixels, 0.5, seed=s))
            for s in range(10)
        }
        assert len(digests) > 1

    @pytest.mark.parametrize("name", SAMPLER_NAMES)
    def test_predictor_pickle_roundtrip(self, quantized, plane_pixels, name):
        # Fleet workers unpickle the predictor bundle and must reproduce
        # the coordinator's designs and stage fingerprints exactly.
        predictor = Zatel(MOBILE_SOC, ZatelConfig(sampler=name, replicates=3))
        clone = pickle.loads(pickle.dumps(predictor))
        assert clone.sampler == predictor.sampler
        assert clone._simulate_params() == predictor._simulate_params()
        a = predictor.sampler.design(quantized, plane_pixels, 0.5, seed=5)
        b = clone.sampler.design(quantized, plane_pixels, 0.5, seed=5)
        assert a == b

    def test_designs_and_fingerprints_stable_across_processes(self):
        # Equal seeds must reproduce designs bit-for-bit *in any
        # process* (no hash randomization, no iteration-order leaks).
        script = (
            "from tests.test_heatmap_quantize import synthetic_frame\n"
            "from tests.test_samplers import design_digest\n"
            "from repro.core import Heatmap, Zatel, ZatelConfig, quantize_heatmap\n"
            "from repro.core.samplers import make_sampler\n"
            "from repro.core.stages.fingerprint import stable_hash\n"
            "from repro.gpu import MOBILE_SOC\n"
            "frame = synthetic_frame(width=32, height=8, hot_column=16, spread=60)\n"
            "q = quantize_heatmap(Heatmap.from_frame(frame, warp_width=0),"
            " num_colors=4, seed=0)\n"
            "pixels = [(x, y) for y in range(8) for x in range(32)]\n"
            "for name in ('heatmap', 'ranked_set', 'two_phase'):\n"
            "    cfg = ZatelConfig(sampler=name, replicates=3)\n"
            "    design = make_sampler(cfg).design(q, pixels, 0.5, seed=11)\n"
            "    params = stable_hash(*Zatel(MOBILE_SOC, cfg)._simulate_params())\n"
            "    print(name, design_digest(design), params)\n"
        )
        root = Path(__file__).resolve().parents[1]
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            cwd=root,
            env={"PYTHONPATH": f"{root / 'src'}:{root}", "PATH": "/usr/bin:/bin"},
        )
        frame = synthetic_frame(width=32, height=8, hot_column=16, spread=60)
        q = quantize_heatmap(
            Heatmap.from_frame(frame, warp_width=0), num_colors=4, seed=0
        )
        pixels = [(x, y) for y in range(8) for x in range(32)]
        for line in proc.stdout.strip().splitlines():
            name, digest, params = line.split()
            cfg = ZatelConfig(sampler=name, replicates=3)
            design = make_sampler(cfg).design(q, pixels, 0.5, seed=11)
            assert design_digest(design) == digest
            assert stable_hash(*Zatel(MOBILE_SOC, cfg)._simulate_params()) == params


class TestFingerprints:
    def test_sampler_identities_never_alias(self):
        identities = {
            make_sampler(ZatelConfig(sampler=name)).fingerprint_params()
            for name in SAMPLER_NAMES
        }
        assert len(identities) == len(SAMPLER_NAMES)

    def test_identity_carries_algorithm_version(self):
        sampler = RankedSetSampler()
        assert sampler.fingerprint_params()[1] == sampler.version

    def test_knobs_change_the_identity(self):
        assert (
            RankedSetSampler(replicates=3).fingerprint_params()
            != RankedSetSampler(replicates=5).fingerprint_params()
        )

    def test_simulate_params_distinguish_samplers(self):
        hashes = {
            stable_hash(
                *Zatel(MOBILE_SOC, ZatelConfig(sampler=name))._simulate_params()
            )
            for name in SAMPLER_NAMES
        }
        assert len(hashes) == len(SAMPLER_NAMES)


class TestReplicateVariance:
    def test_mean_and_variance_of_the_mean(self):
        estimates = [{"cycles": 10.0}, {"cycles": 14.0}, {"cycles": 12.0}]
        means, variances = replicate_mean_and_variance(estimates)
        assert means["cycles"] == pytest.approx(12.0)
        # Sample variance 4.0, divided by R=3 replicates.
        assert variances["cycles"] == pytest.approx(4.0 / 3.0)

    def test_requires_two_replicates(self):
        with pytest.raises(ValueError):
            replicate_mean_and_variance([{"cycles": 1.0}])


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def results(self, small_scene, small_frame):
        return {
            name: Zatel(
                MOBILE_SOC, ZatelConfig(sampler=name, replicates=3)
            ).predict(small_scene, small_frame)
            for name in SAMPLER_NAMES
        }

    def test_default_sampler_is_a_point_prediction(self, results):
        result = results["heatmap"]
        assert result.variances == {}
        assert result.confidence_intervals() == {}
        assert result.sampler["name"] == "heatmap"

    @pytest.mark.parametrize("name", REPLICATE_SAMPLERS)
    def test_replicate_samplers_report_uncertainty(self, results, name):
        result = results[name]
        assert result.variances["cycles"] > 0.0
        assert result.dof == sum(g.replicates - 1 for g in result.groups)
        assert result.dof > 0
        lo, hi = result.confidence_intervals()["cycles"]
        assert lo < result.metrics["cycles"] < hi
        # Wider confidence -> wider interval.
        lo99, hi99 = result.confidence_intervals(level=0.99)["cycles"]
        assert lo99 < lo and hi < hi99

    @pytest.mark.parametrize("name", REPLICATE_SAMPLERS)
    def test_provenance_travels_on_the_result(self, results, name):
        provenance = results[name].sampler
        assert provenance["name"] == name
        assert provenance["params"]["replicates"] == 3
        assert provenance["seed"] == ZatelConfig().seed

    def test_service_payload_carries_uncertainty_block(self, results):
        payload = result_payload("small", "packet", "mobile", results["two_phase"])
        assert payload["sampler"]["name"] == "two_phase"
        assert payload["variances"]["cycles"] > 0.0
        intervals = payload["confidence_intervals"]
        assert set(intervals) == set(results["two_phase"].variances)
        for lo, hi in intervals.values():
            assert lo <= hi

    def test_invalid_confidence_level_rejected(self, results):
        with pytest.raises(ValueError):
            results["two_phase"].confidence_intervals(level=1.0)


class TestSpecValidation:
    def test_spec_accepts_samplers(self):
        for name in SAMPLER_NAMES:
            spec = PredictSpec(scene="SPRNG", sampler=name, replicates=4)
            assert spec.sampler == name

    def test_spec_rejects_unknown_sampler(self):
        with pytest.raises(ValueError, match="sampler"):
            PredictSpec(scene="SPRNG", sampler="sobol")

    @pytest.mark.parametrize("replicates", [1, 0, 17, True])
    def test_spec_rejects_bad_replicates(self, replicates):
        with pytest.raises(ValueError):
            PredictSpec(scene="SPRNG", replicates=replicates)

    def test_spec_fingerprint_distinguishes_samplers(self):
        a = PredictSpec(scene="SPRNG", sampler="ranked_set")
        b = PredictSpec(scene="SPRNG", sampler="two_phase")
        assert spec_fingerprint(a) != spec_fingerprint(b)
        assert spec_fingerprint(a) != spec_fingerprint(
            PredictSpec(scene="SPRNG", sampler="ranked_set", replicates=3)
        )

    def test_protocol_accepts_sampler_fields(self):
        spec, wait = parse_predict_payload(
            {"scene": "SPRNG", "sampler": "ranked_set", "replicates": 3}
        )
        assert (spec.sampler, spec.replicates) == ("ranked_set", 3)
        assert wait is True

    def test_protocol_rejects_wrong_types(self):
        with pytest.raises(ValueError, match="sampler"):
            parse_predict_payload({"scene": "SPRNG", "sampler": 5})
        with pytest.raises(ValueError, match="replicates"):
            parse_predict_payload({"scene": "SPRNG", "replicates": "many"})


class TestConfigValidation:
    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError, match="sampler"):
            ZatelConfig(sampler="sobol")

    def test_too_few_replicates_rejected(self):
        with pytest.raises(ValueError, match="replicates"):
            ZatelConfig(replicates=1)

    def test_make_sampler_threads_the_knobs(self):
        config = ZatelConfig(
            sampler="two_phase", replicates=7, block_width=16, block_height=4
        )
        sampler = make_sampler(config)
        assert isinstance(sampler, TwoPhaseStratifiedSampler)
        assert sampler.params() == {
            "replicates": 7,
            "block_width": 16,
            "block_height": 4,
        }
