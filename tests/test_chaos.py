"""Tests for the fleet chaos harness (:mod:`repro.testing.chaos`)."""

from __future__ import annotations

import pytest

from repro.testing.chaos import (
    CHAOS_KINDS,
    ChaosPlan,
    ChaosSpec,
    WorkerKilled,
    corrupt_result,
    hang_worker,
    kill_worker,
    slow_worker,
)
from repro.testing.faults import ALWAYS


class TestChaosSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosSpec("explode", 0)

    def test_rejects_negative_group(self):
        with pytest.raises(ValueError, match="group index"):
            kill_worker(-1)

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="attempts"):
            ChaosSpec("kill", 0, attempts=0)

    def test_fires_on_first_attempts_only(self):
        spec = kill_worker(3, attempts=2)
        assert spec.fires_on("w0", 0)
        assert spec.fires_on("w0", 1)
        assert not spec.fires_on("w0", 2)

    def test_always_fires_on_every_attempt(self):
        spec = corrupt_result(0, attempts=ALWAYS)
        assert all(spec.fires_on("w0", attempt) for attempt in range(10))

    def test_worker_pinning(self):
        spec = hang_worker(1, attempts=ALWAYS, worker="w1")
        assert spec.fires_on("w1", 0)
        assert not spec.fires_on("w0", 0)

    def test_helpers_cover_every_kind(self):
        specs = [kill_worker(0), hang_worker(0), slow_worker(0), corrupt_result(0)]
        assert sorted(spec.kind for spec in specs) == sorted(CHAOS_KINDS)


class TestChaosPlan:
    def test_action_matches_group_and_attempt(self):
        plan = ChaosPlan([kill_worker(2, attempts=1)])
        assert plan.action("w0", 2, 0) == "kill"
        assert plan.action("w0", 2, 1) is None  # second dispatch survives
        assert plan.action("w0", 1, 0) is None  # other groups untouched

    def test_first_matching_spec_wins(self):
        plan = ChaosPlan(
            [kill_worker(0, attempts=1), slow_worker(0, attempts=ALWAYS)]
        )
        assert plan.action("w0", 0, 0) == "kill"
        assert plan.action("w0", 0, 1) == "slow"

    def test_empty_plan_is_falsy_and_inert(self):
        plan = ChaosPlan()
        assert not plan
        assert plan.action("w0", 0, 0) is None

    def test_json_round_trip(self):
        plan = ChaosPlan(
            [kill_worker(2), corrupt_result(0, attempts=ALWAYS, worker="w1")],
            hang_seconds=7.5,
            slow_seconds=0.125,
        )
        restored = ChaosPlan.from_json(plan.to_json())
        assert restored.specs == plan.specs
        assert restored.hang_seconds == 7.5
        assert restored.slow_seconds == 0.125

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed"):
            ChaosPlan.from_json("{not json")
        with pytest.raises(ValueError, match="JSON object"):
            ChaosPlan.from_json("[1, 2]")

    def test_in_process_kill_raises_worker_killed(self):
        plan = ChaosPlan([kill_worker(0)])
        with pytest.raises(WorkerKilled):
            plan.die(in_process=True)

    def test_worker_killed_evades_exception_handlers(self):
        # Task-isolation boundaries catch Exception; a chaos kill must
        # sail through them like a real process death would.
        assert not issubclass(WorkerKilled, Exception)

    def test_apply_timing_is_noop_for_non_timing_kinds(self):
        plan = ChaosPlan(slow_seconds=0.01)
        plan.apply_timing(None)
        plan.apply_timing("kill")
        plan.apply_timing("corrupt")
        plan.apply_timing("slow")  # sleeps 0.01s
