"""Tests for GPU configurations and downscaling (paper Table II, §III-C)."""

import pytest

from repro.gpu import MOBILE_SOC, RTX_2060, CacheConfig, GPUConfig, preset
from repro.core import choose_downscale_factor, downscale_gpu, valid_factors


class TestCacheConfig:
    def test_fully_associative_single_set(self):
        cache = CacheConfig(64 * 1024, 128, 0, 20)
        assert cache.num_sets == 1
        assert cache.num_lines == 512

    def test_set_associative_geometry(self):
        cache = CacheConfig(256 * 1024, 128, 16, 160)
        assert cache.num_lines == 2048
        assert cache.num_sets == 128

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 128, 0, 20)  # size not multiple of line
        with pytest.raises(ValueError):
            CacheConfig(0, 128, 0, 20)


class TestPresets:
    def test_table_ii_mobile(self):
        assert MOBILE_SOC.num_sms == 8
        assert MOBILE_SOC.num_mem_partitions == 4
        assert MOBILE_SOC.registers_per_sm == 32768
        assert MOBILE_SOC.l2_total_bytes == 3 * 1024 * 1024

    def test_table_ii_rtx(self):
        assert RTX_2060.num_sms == 30
        assert RTX_2060.num_mem_partitions == 12
        assert RTX_2060.registers_per_sm == 65536
        assert RTX_2060.l2_total_bytes == 3 * 1024 * 1024

    def test_shared_table_ii_rows(self):
        for cfg in (MOBILE_SOC, RTX_2060):
            assert cfg.warp_size == 32
            assert cfg.max_warps_per_sm == 32
            assert cfg.rt_units_per_sm == 1
            assert cfg.rt_max_warps == 4
            assert cfg.rt_mshr_size == 64
            assert cfg.l1d.size_bytes == 64 * 1024
            assert cfg.l1d.associativity == 0  # fully associative

    def test_preset_lookup(self):
        assert preset("mobile") is MOBILE_SOC
        assert preset("RTX2060") is RTX_2060
        with pytest.raises(ValueError):
            preset("a100")

    def test_register_limited_occupancy(self):
        # Mobile: 32768 / (64 regs * 32 lanes) = 16 resident warps.
        assert MOBILE_SOC.resident_warps_per_sm == 16
        # RTX: 65536 / 2048 = 32, capped by max_warps_per_sm.
        assert RTX_2060.resident_warps_per_sm == 32

    def test_describe_mentions_key_numbers(self):
        text = MOBILE_SOC.describe()
        assert "8" in text and "MobileSoC" in text


class TestDownscaling:
    def test_gcd_factors_match_paper(self):
        # "Mobile SoC contains 8 SMs and 4 memory partitions, we use a
        # downscaling factor of K = 4 ... RTX 2060 ... K = 6."
        assert choose_downscale_factor(MOBILE_SOC) == 4
        assert choose_downscale_factor(RTX_2060) == 6

    def test_downscale_divides_components(self):
        small, k = downscale_gpu(MOBILE_SOC)
        assert k == 4
        assert small.num_sms == 2
        assert small.num_mem_partitions == 1

    def test_shared_resources_shrink_automatically(self):
        small = RTX_2060.downscale(6)
        # L2 slice unchanged => total LLC divides by K.
        assert small.l2_slice == RTX_2060.l2_slice
        assert small.l2_total_bytes == RTX_2060.l2_total_bytes // 6
        # DRAM channels = partitions => peak bandwidth divides by K.
        assert small.num_mem_partitions == 2

    def test_per_sm_resources_untouched(self):
        small = MOBILE_SOC.downscale(2)
        assert small.l1d == MOBILE_SOC.l1d
        assert small.rt_max_warps == MOBILE_SOC.rt_max_warps
        assert small.registers_per_sm == MOBILE_SOC.registers_per_sm

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            MOBILE_SOC.downscale(3)  # 8 % 3 != 0
        with pytest.raises(ValueError):
            MOBILE_SOC.downscale(0)

    def test_valid_factors(self):
        assert valid_factors(MOBILE_SOC) == [1, 2, 4]
        assert valid_factors(RTX_2060) == [1, 2, 3, 6]

    def test_explicit_factor(self):
        small, k = downscale_gpu(RTX_2060, 3)
        assert k == 3 and small.num_sms == 10

    def test_name_records_factor(self):
        assert "K4" in MOBILE_SOC.downscale(4).name

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GPUConfig(
                name="bad", num_sms=0, num_mem_partitions=1,
                registers_per_sm=1024, max_warps_per_sm=4,
            )
