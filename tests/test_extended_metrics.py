"""Tests for the extended (non-Table-I) metrics: SIMD efficiency and
warp occupancy."""

import pytest

from repro.gpu import (
    EXTENDED_METRICS,
    METRICS,
    MOBILE_SOC,
    RTX_2060,
    CycleSimulator,
    SimulationStats,
    compile_kernel,
)


class TestDefinitions:
    def test_extended_disjoint_from_table_i(self):
        assert not set(EXTENDED_METRICS) & set(METRICS)

    def test_lookup_via_metric(self):
        stats = SimulationStats(
            cycles=100.0,
            instructions=320,
            issued_warp_instructions=10,
            warp_resident_cycles=50.0,
            sm_count=1,
            resident_limit=1,
        )
        assert stats.metric("simd_efficiency") == pytest.approx(1.0)
        assert stats.metric("warp_occupancy") == pytest.approx(0.5)

    def test_unknown_still_rejected(self):
        with pytest.raises(KeyError):
            SimulationStats().metric("flops")

    def test_zero_guards(self):
        stats = SimulationStats()
        assert stats.simd_efficiency == 0.0
        assert stats.warp_occupancy == 0.0

    def test_extended_metrics_dict(self):
        stats = SimulationStats(cycles=10.0)
        assert tuple(stats.extended_metrics()) == EXTENDED_METRICS


class TestMeasuredValues:
    def test_bounded_in_unit_interval(self, small_full_stats):
        assert 0.0 < small_full_stats.simd_efficiency <= 1.0
        assert 0.0 < small_full_stats.warp_occupancy <= 1.0

    def test_filtering_lowers_simd_efficiency(
        self, small_scene, small_settings, small_frame, small_full_stats
    ):
        # Randomly masking half the lanes inside live warps wastes issue
        # slots: SIMD efficiency must drop relative to the full run.
        import random

        pixels = small_settings.all_pixels()
        rng = random.Random(9)
        selected = set(rng.sample(pixels, len(pixels) // 2))
        warps = compile_kernel(
            small_frame, pixels, small_scene.addresses, selected=selected
        )
        stats = CycleSimulator(MOBILE_SOC, small_scene.addresses).run(warps)
        assert stats.simd_efficiency < small_full_stats.simd_efficiency

    def test_bigger_gpu_lowers_occupancy(
        self, small_scene, small_settings, small_frame
    ):
        # The same warp count spread over 30 SMs leaves more resident
        # slots idle than over 8.
        warps = compile_kernel(
            small_frame, small_settings.all_pixels(), small_scene.addresses
        )
        mobile = CycleSimulator(MOBILE_SOC, small_scene.addresses).run(warps)
        rtx = CycleSimulator(RTX_2060, small_scene.addresses).run(warps)
        assert rtx.warp_occupancy < mobile.warp_occupancy


class TestSurviveFullPipeline:
    """Extended metrics must flow through extrapolation and combination,
    not just raw simulator output (both are rates: pass through per
    group, then average across groups)."""

    def test_zatel_predict_reports_extended_metrics(
        self, small_scene, small_frame
    ):
        from repro.core import Zatel

        result = Zatel(MOBILE_SOC).predict(small_scene, small_frame)
        for name in EXTENDED_METRICS:
            assert name in result.metrics
            assert 0.0 < result.metrics[name] <= 1.0
        # Rate combine: the final value is the mean of the group values.
        for name in EXTENDED_METRICS:
            group_values = [g.metrics[name] for g in result.groups]
            assert result.metrics[name] == pytest.approx(
                sum(group_values) / len(group_values)
            )

    def test_sampling_predictor_reports_extended_metrics(
        self, small_scene, small_frame
    ):
        from repro.models import SamplingPredictor

        prediction = SamplingPredictor(MOBILE_SOC).predict(
            small_scene, small_frame, 0.3
        )
        for name in EXTENDED_METRICS:
            assert name in prediction.metrics
            assert 0.0 < prediction.metrics[name] <= 1.0
