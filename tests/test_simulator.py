"""Tests for the cycle simulator: determinism, scaling behaviour, metrics."""

import dataclasses

import pytest

from repro.gpu import (
    MOBILE_SOC,
    RTX_2060,
    CycleSimulator,
    METRICS,
    SimulationStats,
    compile_kernel,
)
from repro.scene.scene import AddressMap


@pytest.fixture(scope="module")
def sim_inputs(small_scene, small_settings, small_frame):
    pixels = small_settings.all_pixels()
    warps = compile_kernel(small_frame, pixels, small_scene.addresses)
    return small_scene, pixels, warps


class TestDeterminism:
    def test_repeated_runs_identical(self, sim_inputs):
        scene, _, warps = sim_inputs
        sim = CycleSimulator(MOBILE_SOC, scene.addresses)
        a, b = sim.run(warps), sim.run(warps)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions
        assert a.l1d_misses == b.l1d_misses
        assert a.work_units == b.work_units


class TestBasicInvariants:
    def test_all_metrics_present_and_finite(self, small_full_stats):
        for name in METRICS:
            value = small_full_stats.metric(name)
            assert value == value  # not NaN
            assert value >= 0.0

    def test_cycles_positive(self, small_full_stats):
        assert small_full_stats.cycles > 0

    def test_rates_bounded(self, small_full_stats):
        assert 0.0 <= small_full_stats.l1d_miss_rate <= 1.0
        assert 0.0 <= small_full_stats.l2_miss_rate <= 1.0
        assert 0.0 <= small_full_stats.dram_efficiency <= 1.0
        assert 0.0 <= small_full_stats.bw_utilization <= 1.0

    def test_rt_efficiency_within_warp_size(self, small_full_stats):
        assert 0.0 < small_full_stats.rt_efficiency <= 32.0

    def test_pixel_accounting(self, sim_inputs, small_full_stats):
        _, pixels, _ = sim_inputs
        assert small_full_stats.pixels_traced == len(pixels)
        assert small_full_stats.pixels_filtered == 0

    def test_empty_launch(self, sim_inputs):
        scene, _, _ = sim_inputs
        stats = CycleSimulator(MOBILE_SOC, scene.addresses).run([])
        assert stats.cycles == 0.0
        assert stats.instructions == 0

    def test_unknown_metric_rejected(self, small_full_stats):
        with pytest.raises(KeyError):
            small_full_stats.metric("flops")

    def test_summary_mentions_config(self, small_full_stats):
        assert "MobileSoC" in small_full_stats.summary()


class TestScalingBehaviour:
    def test_filtering_reduces_work_and_cycles(
        self, sim_inputs, small_frame, small_full_stats
    ):
        scene, pixels, _ = sim_inputs
        # Keep only the first half of the warps' pixels (block-aligned).
        selected = set(pixels[: len(pixels) // 2])
        warps = compile_kernel(
            small_frame, pixels, scene.addresses, selected=selected
        )
        stats = CycleSimulator(MOBILE_SOC, scene.addresses).run(warps)
        assert stats.pixels_filtered == len(pixels) // 2
        assert stats.work_units < small_full_stats.work_units
        # At this tiny (32x32) latency-bound scale the filtered run's
        # colder caches can cost almost as much wall time as the halved
        # work saves; require only that cycles stay in the same band.
        assert stats.cycles <= small_full_stats.cycles * 1.6
        assert stats.instructions < small_full_stats.instructions

    def test_more_sms_never_slower(self, sim_inputs):
        scene, _, warps = sim_inputs
        mobile = CycleSimulator(MOBILE_SOC, scene.addresses).run(warps)
        rtx = CycleSimulator(RTX_2060, scene.addresses).run(warps)
        assert rtx.cycles <= mobile.cycles * 1.1  # allow small model noise

    def test_downscaled_config_runs(self, sim_inputs):
        scene, _, warps = sim_inputs
        small = MOBILE_SOC.downscale(4)
        stats = CycleSimulator(small, scene.addresses).run(warps)
        assert stats.cycles > 0
        assert stats.dram_channels == 1

    def test_instructions_proportional_to_pixels(
        self, sim_inputs, small_frame, small_full_stats
    ):
        scene, pixels, _ = sim_inputs
        half = pixels[: len(pixels) // 2]
        warps = compile_kernel(small_frame, half, scene.addresses)
        stats = CycleSimulator(MOBILE_SOC, scene.addresses).run(warps)
        ratio = stats.instructions / small_full_stats.instructions
        assert 0.3 < ratio < 0.7  # half the pixels, roughly half the work


class TestStatsDataclass:
    def test_metrics_dict_order(self):
        stats = SimulationStats(cycles=10.0, instructions=100)
        assert tuple(stats.metrics()) == METRICS

    def test_ipc_derivation(self):
        stats = SimulationStats(cycles=10.0, instructions=100)
        assert stats.ipc == 10.0
        assert dataclasses.replace(stats, cycles=0.0).ipc == 0.0

    def test_zero_division_guards(self):
        stats = SimulationStats()
        assert stats.l1d_miss_rate == 0.0
        assert stats.l2_miss_rate == 0.0
        assert stats.rt_efficiency == 0.0
        assert stats.dram_efficiency == 0.0
        assert stats.bw_utilization == 0.0


