"""Contract tests: the scene library matches the paper's characterizations.

The experiments lean on per-scene properties (SPRNG under-saturates, BATH
runs longest, SHIP < WKND < BUNNY temperature ordering).  These tests pin
those contracts at a reduced plane so regressions in scene tuning surface
in the unit suite rather than deep inside a benchmark.
"""

import pytest

from repro.core import Heatmap
from repro.scene import TUNING_SCENES, make_scene
from repro.tracer import FunctionalTracer, RenderSettings


@pytest.fixture(scope="module")
def scene_frames():
    settings = RenderSettings(width=64, height=64)
    return {
        name: FunctionalTracer(make_scene(name), settings).trace_frame()
        for name in ("SPRNG", "SHIP", "WKND", "BUNNY", "PARK", "BATH")
    }


class TestSaturationContracts:
    def test_sprng_is_the_lightest_workload(self, scene_frames):
        costs = {n: f.total_cost() for n, f in scene_frames.items()}
        assert costs["SPRNG"] == min(costs.values())

    def test_bath_is_the_heaviest_workload(self, scene_frames):
        # §IV-D: BATH is "one of the longest-running scenes by a high
        # margin".
        costs = {n: f.total_cost() for n, f in scene_frames.items()}
        assert costs["BATH"] == max(costs.values())
        assert costs["BATH"] > 4 * costs["SPRNG"]

    def test_park_heavier_than_tuning_scenes(self, scene_frames):
        costs = {n: f.total_cost() for n, f in scene_frames.items()}
        assert costs["PARK"] > costs["SHIP"]
        assert costs["PARK"] > costs["WKND"]


class TestTemperatureContracts:
    def test_fig12_ordering_under_shared_scale(self, scene_frames):
        # "These scenes were generated relative to each other by using the
        # same scaling value": SHIP coldest, WKND mixed, BUNNY warmest.
        import numpy as np

        shared_peak = max(
            float(np.percentile(scene_frames[n].cost_map(), 99.5))
            for n in TUNING_SCENES
        )
        means = {}
        for name in TUNING_SCENES:
            costs = scene_frames[name].cost_map()
            means[name] = float(np.clip(costs / shared_peak, 0, 1).mean())
        assert means["SHIP"] < means["WKND"] < means["BUNNY"]

    def test_self_normalized_ship_is_coldest(self, scene_frames):
        temps = {
            name: Heatmap.from_frame(scene_frames[name]).mean_temperature()
            for name in TUNING_SCENES
        }
        assert temps["SHIP"] == min(temps.values())
        assert temps["BUNNY"] == max(temps.values())


class TestWorkingSetContracts:
    def test_working_sets_exceed_l1(self):
        # DESIGN.md §5: scene working sets must dwarf the 64KB L1D so miss
        # rates are capacity-driven, not cold-dominated.  SPRNG is exempt —
        # being tiny is its role.
        from repro.gpu import MOBILE_SOC

        l1 = MOBILE_SOC.l1d.size_bytes
        for name in ("SHIP", "WKND", "BUNNY", "PARK", "BATH"):
            scene = make_scene(name)
            working_set = scene.node_count() * 64 + scene.triangle_count() * 48
            assert working_set > 3 * l1, f"{name} working set too small"

    def test_sprng_stays_tiny(self):
        scene = make_scene("SPRNG")
        assert scene.triangle_count() < 500


class TestExtraScenes:
    def test_extra_scenes_build_and_render(self):
        from repro.scene.library import EXTRA_SCENES

        settings = RenderSettings(width=16, height=16)
        for name in EXTRA_SCENES:
            scene = make_scene(name)
            assert scene.triangle_count() > 500
            frame = FunctionalTracer(scene, settings).trace_frame()
            assert frame.total_cost() > 0

    def test_extra_scenes_disjoint_from_evaluated_set(self):
        from repro.scene import SCENE_NAMES
        from repro.scene.library import EXTRA_SCENES

        assert not set(EXTRA_SCENES) & set(SCENE_NAMES)
