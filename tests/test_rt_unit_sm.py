"""Tests for the RT unit's traversal jobs and the SM's resource models."""

import pytest

from repro.gpu import MOBILE_SOC, TraceOp
from repro.gpu.memory import MemorySubsystem
from repro.gpu.rt_unit import RTUnit
from repro.gpu.sm import SM
from repro.gpu.warp import ComputeOp, StoreOp
from repro.scene.scene import AddressMap


@pytest.fixture()
def sm():
    config = MOBILE_SOC
    return SM(0, config, MemorySubsystem(config))


@pytest.fixture()
def amap():
    return AddressMap()


def run_job(sm, op, amap, start=0.0):
    unit = sm.rt_units[0]
    assert unit.try_acquire_slot()
    job = sm.make_trace_job(unit, op, amap)
    cycle = start
    while not job.done:
        cycle = job.advance(cycle)
    unit.release_slot()
    return cycle, unit


class TestIssuePort:
    def test_serializes_back_to_back(self, sm):
        first = sm.reserve_issue(0.0, 10)
        second = sm.reserve_issue(0.0, 10)
        assert first == 0.0
        assert second == 10.0

    def test_idle_gap_respected(self, sm):
        sm.reserve_issue(0.0, 10)
        assert sm.reserve_issue(100.0, 1) == 100.0


class TestMemAccess:
    def test_hit_costs_l1_latency(self, sm):
        sm.mem_access(0, 0.0)  # warm the line
        done = sm.mem_access(0, 1000.0)
        assert done == 1000.0 + sm.config.l1d.latency

    def test_miss_costs_more_than_hit(self, sm):
        miss = sm.mem_access(128, 0.0)
        hit = sm.mem_access(128, miss)
        assert miss - 0.0 > hit - miss

    def test_mshr_merges_concurrent_misses(self, sm):
        first = sm.mem_access(256, 0.0)
        # Second request to the same in-flight line merges: it completes no
        # later than the first fetch (plus its own lookup offset).
        merged = sm.mem_access(256, 1.0)
        assert merged <= first + sm.config.l1d.latency + 1.0
        assert sm.mshr.merges >= 0  # line was inserted into L1 on first miss

    def test_access_counter(self, sm):
        before = sm.mem_accesses
        sm.mem_access(0, 0.0)
        assert sm.mem_accesses == before + 1


class TestComputeExecution:
    def test_latency_is_issue_plus_alu(self, sm):
        op = ComputeOp((8, 8, 8))
        # First issue pays a cold icache fetch; a second warp hitting the
        # same op slot does not.
        cold = sm.execute_compute(op, 0.0)
        assert cold == sm.config.icache.latency + 8 + sm.config.alu_latency
        warm_start = 1000.0
        warm = sm.execute_compute(op, warm_start)
        assert warm == warm_start + 8 + sm.config.alu_latency

    def test_masked_op_is_free(self, sm):
        assert sm.execute_compute(ComputeOp((0, 0)), 5.0) == 5.0

    def test_distinct_op_slots_fetch_separately(self, sm):
        sm.execute_compute(ComputeOp((4,)), 0.0, op_slot=0)
        before = sm.icache.stats.misses
        sm.execute_compute(ComputeOp((4,)), 0.0, op_slot=40)  # new line
        assert sm.icache.stats.misses == before + 1


class TestStoreExecution:
    def test_store_returns_quickly(self, sm):
        op = StoreOp((0x8000_0000, 0x8000_0010))
        done = sm.execute_store(op, 0.0)
        assert done <= 2.0  # fire-and-forget

    def test_store_reaches_l2(self, sm):
        sm.execute_store(StoreOp((0x8000_0000,)), 0.0)
        assert sm.memory.l2_stats().accesses == 1

    def test_empty_store_free(self, sm):
        assert sm.execute_store(StoreOp((None, None)), 3.0) == 3.0


class TestRTUnitSlots:
    def test_slot_pool_bounded(self, sm):
        unit = sm.rt_units[0]
        grabbed = [unit.try_acquire_slot() for _ in range(unit.max_warps + 1)]
        assert grabbed == [True] * unit.max_warps + [False]

    def test_release_restores_capacity(self, sm):
        unit = sm.rt_units[0]
        assert unit.try_acquire_slot()
        unit.release_slot()
        assert unit.free_slots == unit.max_warps

    def test_over_release_rejected(self, sm):
        with pytest.raises(RuntimeError):
            sm.rt_units[0].release_slot()


class TestTraversalJob:
    def test_steps_count_lockstep_maximum(self, sm, amap):
        op = TraceOp(
            per_thread_nodes=([0, 1, 2, 3], [0, 1]),
            per_thread_tris=([], []),
        )
        _, unit = run_job(sm, op, amap)
        assert unit.stats.traversal_steps == 4
        # Active rays: 2, 2, 1, 1 over the four steps.
        assert unit.stats.active_ray_steps == 6

    def test_efficiency_metric(self, sm, amap):
        op = TraceOp(
            per_thread_nodes=([0, 1], [0, 1]),
            per_thread_tris=([], []),
        )
        _, unit = run_job(sm, op, amap)
        assert unit.stats.average_efficiency() == pytest.approx(2.0)

    def test_shared_nodes_fetch_one_line(self, sm, amap):
        # Both rays visit node 0 at step 0: one line fetch, not two.
        op = TraceOp(
            per_thread_nodes=([0], [0]),
            per_thread_tris=([], []),
        )
        _, unit = run_job(sm, op, amap)
        assert unit.stats.node_fetches == 1

    def test_divergent_nodes_fetch_distinct_lines(self, sm, amap):
        # Node indices 0 and 64 land on different 128B lines (64B nodes).
        op = TraceOp(
            per_thread_nodes=([0], [64]),
            per_thread_tris=([], []),
        )
        _, unit = run_job(sm, op, amap)
        assert unit.stats.node_fetches == 2

    def test_triangle_phase_counts_separately(self, sm, amap):
        op = TraceOp(
            per_thread_nodes=([0],),
            per_thread_tris=([3, 4],),
        )
        _, unit = run_job(sm, op, amap)
        assert unit.stats.traversal_steps == 1  # node steps only
        assert unit.stats.tri_fetches >= 1

    def test_zero_work_job_done_immediately(self, sm, amap):
        op = TraceOp(per_thread_nodes=(), per_thread_tris=())
        unit = sm.rt_units[0]
        unit.try_acquire_slot()
        job = sm.make_trace_job(unit, op, amap)
        assert job.done
        unit.release_slot()

    def test_advance_after_done_rejected(self, sm, amap):
        op = TraceOp(per_thread_nodes=([0],), per_thread_tris=([],))
        unit = sm.rt_units[0]
        unit.try_acquire_slot()
        job = sm.make_trace_job(unit, op, amap)
        job.advance(0.0)
        with pytest.raises(RuntimeError):
            job.advance(100.0)
        unit.release_slot()

    def test_cold_misses_slow_the_job(self, sm, amap):
        # A traversal with all-cold far-apart lines takes longer than the
        # same traversal replayed on warm caches.
        nodes = [i * 64 for i in range(10)]  # distinct lines (64B nodes)
        op = TraceOp(per_thread_nodes=(nodes,), per_thread_tris=([],))
        cold_done, _ = run_job(sm, op, amap, start=0.0)
        warm_done, _ = run_job(sm, op, amap, start=cold_done)
        assert (cold_done - 0.0) >= (warm_done - cold_done)
