"""Golden end-to-end predict metrics over the full scene library.

``tests/data/golden_predict.json`` pins the Zatel pipeline's predicted
metrics (Table I + extended) for every library scene, captured from the
pre-telemetry-refactor code.  Every value must match with exact ``==`` —
the telemetry bus is observability, and the refactor of the stat classes,
combine, and extrapolation layers is behaviour-preserving by contract
(the PR 2 golden pattern).

Regenerating (only after an *intentional* model change)::

    PYTHONPATH=src python tests/data/regen_golden_predict.py
"""

import json
from pathlib import Path

import pytest

from repro.core.pipeline import Zatel
from repro.gpu.config import MOBILE_SOC
from repro.scene.library import SCENE_NAMES, make_scene
from repro.tracer.tracer import FunctionalTracer, RenderSettings

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_predict.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def test_golden_covers_all_scenes():
    assert set(GOLDEN["metrics"]) == set(SCENE_NAMES)


@pytest.mark.parametrize("scene_name", SCENE_NAMES)
def test_predict_metrics_byte_identical(scene_name):
    meta = GOLDEN["meta"]
    scene = make_scene(scene_name)
    frame = FunctionalTracer(
        scene,
        RenderSettings(
            width=meta["size"],
            height=meta["size"],
            samples_per_pixel=meta["spp"],
            seed=meta["seed"],
            tracing_backend=meta["backend"],
        ),
    ).trace_frame()
    result = Zatel(MOBILE_SOC).predict(scene, frame)
    expected = GOLDEN["metrics"][scene_name]
    for name, value in expected.items():
        assert result.metrics[name] == value, (
            f"{scene_name}.{name} drifted: {result.metrics[name]!r} != "
            f"golden {value!r}"
        )
    # The golden file must cover every reported metric, so new drift
    # can't hide in an unpinned column.
    assert set(expected) == set(result.metrics)
