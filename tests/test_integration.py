"""Cross-module integration tests: paper-level behavioural invariants.

These check the *emergent* properties the Zatel methodology relies on,
using the small session scene so they stay fast.
"""

import pytest

from repro.core import Zatel, ZatelConfig
from repro.gpu import MOBILE_SOC, RTX_2060, CycleSimulator, compile_kernel
from repro.models import SamplingPredictor


class TestSamplingConvergence:
    """§IV-D: errors shrink as the traced fraction grows."""

    @pytest.fixture(scope="class")
    def errors(self, small_scene, small_frame, small_full_stats):
        predictor = SamplingPredictor(MOBILE_SOC)
        result = {}
        for fraction in (0.25, 0.5, 0.75):
            prediction = predictor.predict(small_scene, small_frame, fraction)
            result[fraction] = abs(
                prediction.metrics["cycles"] - small_full_stats.cycles
            ) / small_full_stats.cycles
        return result

    def test_high_fraction_beats_low_fraction(self, errors):
        assert errors[0.75] <= errors[0.25]

    def test_errors_bounded_at_three_quarters(self, errors):
        assert errors[0.75] < 0.6


class TestFilterShaderOverhead:
    """§III-F: filtered pixels' impact is negligible but non-zero."""

    def test_all_filtered_run_is_tiny(
        self, small_scene, small_settings, small_frame, small_full_stats
    ):
        pixels = small_settings.all_pixels()
        warps = compile_kernel(
            small_frame, pixels, small_scene.addresses, selected=set()
        )
        stats = CycleSimulator(MOBILE_SOC, small_scene.addresses).run(warps)
        # Every pixel filtered: two instructions each, no traces, no stores.
        assert stats.pixels_filtered == len(pixels)
        assert stats.instructions == 2 * len(pixels)
        assert stats.rt_traversal_steps == 0
        assert stats.cycles < small_full_stats.cycles * 0.05


class TestGroupSplittingBias:
    """§III-G: independent group instances inflate the L2 miss rate."""

    def test_l2_miss_rate_over_predicted(
        self, small_scene, small_frame, small_full_stats
    ):
        result = Zatel(MOBILE_SOC).predict(small_scene, small_frame)
        assert result.metrics["l2_miss_rate"] >= small_full_stats.l2_miss_rate


class TestArchitectureIndependence:
    """§III: Zatel needs no changes to model a different GPU."""

    def test_same_pipeline_both_configs(self, small_scene, small_frame):
        mobile = Zatel(MOBILE_SOC).predict(small_scene, small_frame)
        rtx = Zatel(RTX_2060).predict(small_scene, small_frame)
        assert mobile.downscale_factor == 4
        assert rtx.downscale_factor == 6
        assert set(mobile.metrics) == set(rtx.metrics)

    def test_modified_architecture_changes_prediction(
        self, small_scene, small_frame
    ):
        import dataclasses

        # An architect's what-if: a Mobile SoC with double the RT warps.
        variant = dataclasses.replace(
            MOBILE_SOC, name="MobileSoC-RTx2", rt_max_warps=8
        )
        base = Zatel(MOBILE_SOC).predict(small_scene, small_frame)
        modified = Zatel(variant).predict(small_scene, small_frame)
        # More RT capacity can only help (or tie) predicted cycles.
        assert modified.metrics["cycles"] <= base.metrics["cycles"] * 1.05


class TestDivisionMethods:
    """§IV-E: fine-grained groups sample the scene homogeneously."""

    def test_fine_groups_have_similar_instruction_counts(
        self, small_scene, small_frame
    ):
        result = Zatel(
            MOBILE_SOC, ZatelConfig(fraction_override=1.0)
        ).predict(small_scene, small_frame)
        counts = [g.stats.instructions for g in result.groups]
        assert max(counts) <= 1.5 * min(counts)

    def test_coarse_groups_vary_more_than_fine(self, small_scene, small_frame):
        fine = Zatel(
            MOBILE_SOC, ZatelConfig(fraction_override=1.0, division="fine")
        ).predict(small_scene, small_frame)
        coarse = Zatel(
            MOBILE_SOC, ZatelConfig(fraction_override=1.0, division="coarse")
        ).predict(small_scene, small_frame)

        def spread(result):
            counts = [g.stats.instructions for g in result.groups]
            return (max(counts) - min(counts)) / max(counts)

        assert spread(fine) <= spread(coarse) + 1e-9


class TestEndToEndDeterminism:
    """The entire stack is reproducible from seeds."""

    def test_full_pipeline_reproducible(self, small_scene, small_frame):
        a = Zatel(MOBILE_SOC, ZatelConfig(seed=5)).predict(
            small_scene, small_frame
        )
        b = Zatel(MOBILE_SOC, ZatelConfig(seed=5)).predict(
            small_scene, small_frame
        )
        assert a.metrics == b.metrics
        assert [g.selected_count for g in a.groups] == [
            g.selected_count for g in b.groups
        ]
