"""Unit and property tests for the vector-math toolkit."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scene.vecmath import (
    clamp,
    cross,
    dot,
    length,
    lerp,
    normalize,
    orthonormal_basis,
    reflect,
    spherical_direction,
    vec3,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
nonzero_vec = st.tuples(finite, finite, finite).filter(
    lambda v: math.sqrt(v[0] ** 2 + v[1] ** 2 + v[2] ** 2) > 1e-3
)


def test_vec3_builds_float_array():
    v = vec3(1, 2, 3)
    assert v.dtype == np.float64
    assert v.tolist() == [1.0, 2.0, 3.0]


def test_length_of_unit_axes():
    assert length(vec3(1, 0, 0)) == 1.0
    assert length(vec3(0, 3, 4)) == 5.0


def test_normalize_rejects_zero_vector():
    with pytest.raises(ValueError):
        normalize(vec3(0, 0, 0))


@given(nonzero_vec)
def test_normalize_yields_unit_length(v):
    assert abs(length(normalize(vec3(*v))) - 1.0) < 1e-9


def test_dot_orthogonal_is_zero():
    assert dot(vec3(1, 0, 0), vec3(0, 1, 0)) == 0.0


def test_cross_right_handed():
    assert cross(vec3(1, 0, 0), vec3(0, 1, 0)).tolist() == [0.0, 0.0, 1.0]


@given(nonzero_vec, nonzero_vec)
def test_cross_is_orthogonal_to_inputs(a, b):
    c = cross(vec3(*a), vec3(*b))
    if length(c) > 1e-6:
        assert abs(dot(c, vec3(*a))) < 1e-3 * length(c) * length(vec3(*a))


def test_reflect_mirrors_about_normal():
    d = normalize(vec3(1, -1, 0))
    r = reflect(d, vec3(0, 1, 0))
    assert np.allclose(r, normalize(vec3(1, 1, 0)))


@given(nonzero_vec)
def test_reflect_preserves_length(v):
    d = normalize(vec3(*v))
    r = reflect(d, vec3(0, 1, 0))
    assert abs(length(r) - 1.0) < 1e-9


def test_lerp_endpoints_and_midpoint():
    a, b = vec3(0, 0, 0), vec3(2, 4, 6)
    assert np.allclose(lerp(a, b, 0.0), a)
    assert np.allclose(lerp(a, b, 1.0), b)
    assert np.allclose(lerp(a, b, 0.5), vec3(1, 2, 3))


def test_clamp():
    assert clamp(-1.0, 0.0, 1.0) == 0.0
    assert clamp(0.5, 0.0, 1.0) == 0.5
    assert clamp(2.0, 0.0, 1.0) == 1.0


@given(nonzero_vec)
def test_orthonormal_basis_is_orthonormal(v):
    n = normalize(vec3(*v))
    t, b = orthonormal_basis(n)
    assert abs(length(t) - 1.0) < 1e-6
    assert abs(length(b) - 1.0) < 1e-6
    assert abs(dot(t, n)) < 1e-6
    assert abs(dot(b, n)) < 1e-6
    assert abs(dot(t, b)) < 1e-6


@given(
    st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    nonzero_vec,
)
def test_spherical_direction_in_hemisphere(u, v, n):
    normal = normalize(vec3(*n))
    d = spherical_direction(u, v, normal)
    assert abs(length(d) - 1.0) < 1e-6
    assert dot(d, normal) >= -1e-9  # never below the surface
