"""Golden scalar-vs-packet equivalence over the full scene library.

The packet (wavefront) backend's contract is *byte-identical* output:
every pixel's segments — node visit order, triangle test order, hit
flags, shade instruction counts — and every rendered image must equal
the scalar backend's exactly.  The timing simulator replays these traces
address by address, so any drift here is metric drift.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.scene.library import SCENE_NAMES, make_scene
from repro.tracer.tracer import FunctionalTracer, RenderSettings, trace_frame

SIZE = 12
SPP = 2
SEED = 5


def _settings(backend: str, **kw) -> RenderSettings:
    base = dict(width=SIZE, height=SIZE, samples_per_pixel=SPP, seed=SEED)
    base.update(kw)
    return RenderSettings(tracing_backend=backend, **base)


def _assert_frames_identical(scalar, packet):
    assert set(scalar.pixels) == set(packet.pixels)
    for key in scalar.pixels:
        ps, pp = scalar.pixels[key], packet.pixels[key]
        assert ps == pp, f"pixel {key} diverged"
    assert scalar.total_cost() == packet.total_cost()


@pytest.mark.parametrize("scene_name", SCENE_NAMES)
class TestGoldenEquivalence:
    def test_frames_identical(self, scene_name):
        scene = make_scene(scene_name)
        scalar = FunctionalTracer(scene, _settings("scalar")).trace_frame()
        packet = FunctionalTracer(scene, _settings("packet")).trace_frame()
        assert scalar.backend == "scalar"
        assert packet.backend == "packet"
        _assert_frames_identical(scalar, packet)

    def test_images_identical(self, scene_name):
        # render_image enables the path-prediction cache on the packet
        # side; images must still match bit for bit.
        scene = make_scene(scene_name)
        img_sc = FunctionalTracer(scene, _settings("scalar")).render_image()
        img_pk = FunctionalTracer(scene, _settings("packet")).render_image()
        assert np.array_equal(img_sc, img_pk)


class TestPartialPlanes:
    """Pixel subsets (what group simulation traces) stay identical too."""

    def test_pixel_subset(self):
        scene = make_scene("SPRNG")
        pixels = [(0, 0), (5, 3), (11, 11), (2, 7), (7, 2)]
        scalar = trace_frame(scene, _settings("scalar"), pixels)
        packet = trace_frame(scene, _settings("packet"), pixels)
        _assert_frames_identical(scalar, packet)

    def test_single_sample(self):
        scene = make_scene("PARK")
        scalar = FunctionalTracer(
            scene, _settings("scalar", samples_per_pixel=1)
        ).trace_frame()
        packet = FunctionalTracer(
            scene, _settings("packet", samples_per_pixel=1)
        ).trace_frame()
        _assert_frames_identical(scalar, packet)

    def test_small_wave_size(self):
        # Waves smaller than the plane exercise the chunking path.
        from repro.tracer.wavefront import WavefrontTracer

        scene = make_scene("SPRNG")
        scalar = FunctionalTracer(scene, _settings("scalar")).trace_frame()
        packet = WavefrontTracer(
            scene, _settings("packet"), wave_size=17
        ).trace_frame()
        _assert_frames_identical(scalar, packet)


class TestBackendPlumbing:
    def test_backend_excluded_from_equality(self):
        scene = make_scene("SPRNG")
        scalar = FunctionalTracer(
            scene, _settings("scalar", samples_per_pixel=1)
        ).trace_frame()
        relabeled = dataclasses.replace(scalar, backend="packet")
        assert relabeled == scalar

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            RenderSettings(tracing_backend="simd")

    def test_predict_metrics_zero_drift(self):
        # End to end: Zatel.predict from a scalar-traced frame and a
        # packet-traced frame must produce the same metrics.
        from repro.core.pipeline import Zatel
        from repro.gpu.config import preset

        scene = make_scene("SPRNG")
        gpu = preset("mobile")
        results = {}
        for backend in ("scalar", "packet"):
            frame = FunctionalTracer(
                scene, _settings(backend, width=32, height=32,
                                 samples_per_pixel=1)
            ).trace_frame()
            results[backend] = Zatel(gpu).predict(scene, frame)
        assert results["scalar"].metrics == results["packet"].metrics

    def test_stats_carry_backend(self, small_scene):
        from repro.gpu import MOBILE_SOC, CycleSimulator, compile_kernel
        from repro.core.pipeline import Zatel

        frame = FunctionalTracer(
            small_scene, _settings("packet", width=16, height=16,
                                   samples_per_pixel=1)
        ).trace_frame()
        result = Zatel(MOBILE_SOC).predict(small_scene, frame)
        assert all(g.stats.backend == "packet" for g in result.groups)

    def test_ztrace_roundtrips_backend(self, tmp_path):
        from repro.tracer.serialization import load_frame, save_frame

        scene = make_scene("SPRNG")
        frame = FunctionalTracer(
            scene, _settings("packet", samples_per_pixel=1)
        ).trace_frame()
        path = save_frame(frame, tmp_path / "f.ztrace")
        loaded = load_frame(path)
        assert loaded.backend == "packet"
        assert loaded == frame
