"""Tests for representative-pixel selection (step 5, equations 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DISTRIBUTIONS,
    Heatmap,
    color_quotas,
    compute_fraction,
    make_section_blocks,
    quantize_heatmap,
    select_pixels,
)
from tests.test_heatmap_quantize import synthetic_frame


@pytest.fixture(scope="module")
def quantized():
    # 32x8 plane whose right half is hot.
    frame = synthetic_frame(width=32, height=8, hot_column=16, spread=60)
    for (x, y), trace in frame.pixels.items():
        if x > 16:
            trace.segments[0].nodes = list(range(50))
    hm = Heatmap.from_frame(frame, warp_width=0)
    return quantize_heatmap(hm, num_colors=4, seed=0)


@pytest.fixture(scope="module")
def plane_pixels():
    return [(x, y) for y in range(8) for x in range(32)]


class TestEquationOne:
    def test_clamped_to_bounds(self, quantized, plane_pixels):
        fraction = compute_fraction(quantized, plane_pixels)
        assert 0.3 <= fraction <= 0.6

    def test_cold_pixels_raise_fraction(self, quantized):
        cold = [(x, y) for y in range(8) for x in range(8)]       # cold side
        hot = [(x, y) for y in range(8) for x in range(20, 28)]   # hot side
        assert compute_fraction(quantized, cold) >= compute_fraction(
            quantized, hot
        )

    def test_unclamped_value_is_mean_coolness(self, quantized, plane_pixels):
        raw = compute_fraction(
            quantized, plane_pixels, min_fraction=0.0, max_fraction=1.0
        )
        expected = np.mean(
            [quantized.coolness_at(px, py) for px, py in plane_pixels]
        )
        assert raw == pytest.approx(float(expected))

    def test_empty_group_rejected(self, quantized):
        with pytest.raises(ValueError):
            compute_fraction(quantized, [])


class TestSectionBlocks:
    def test_blocks_tile_the_group(self, quantized, plane_pixels):
        blocks = make_section_blocks(
            plane_pixels, quantized, block_width=32, block_height=2
        )
        assert len(blocks) == len(plane_pixels) // 64
        covered = [p for b in blocks for p in b.pixels]
        assert sorted(covered) == sorted(plane_pixels)

    def test_dominant_color_is_modal(self, quantized, plane_pixels):
        blocks = make_section_blocks(plane_pixels, quantized, 32, 2)
        for block in blocks:
            votes = {}
            for px, py in block.pixels:
                label = quantized.label_at(px, py)
                votes[label] = votes.get(label, 0) + 1
            assert votes[block.dominant_color] == max(votes.values())

    def test_partial_trailing_block(self, quantized):
        pixels = [(x, 0) for x in range(10)]
        blocks = make_section_blocks(pixels, quantized, block_width=8, block_height=1)
        assert len(blocks) == 2
        assert len(blocks[1].pixels) == 2

    def test_validation(self, quantized, plane_pixels):
        with pytest.raises(ValueError):
            make_section_blocks(plane_pixels, quantized, block_width=0)


class TestQuotas:
    def test_uniform_matches_histogram(self, quantized, plane_pixels):
        quotas = color_quotas(quantized, plane_pixels, "uniform")
        histogram = quantized.color_histogram(plane_pixels)
        expected = histogram / histogram.sum()
        assert np.allclose(quotas, expected)

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_quotas_sum_to_one(self, quantized, plane_pixels, distribution):
        quotas = color_quotas(quantized, plane_pixels, distribution)
        assert quotas.sum() == pytest.approx(1.0)
        assert (quotas >= 0).all()

    def test_temperature_shifts_mass_to_hot_colors(self, quantized, plane_pixels):
        uniform = color_quotas(quantized, plane_pixels, "uniform")
        exptmp = color_quotas(quantized, plane_pixels, "exptmp")
        hottest = int(np.argmin(quantized.coolness))
        coldest = int(np.argmax(quantized.coolness))
        # exptmp re-weights towards hot colors relative to uniform.
        if uniform[hottest] > 0 and uniform[coldest] > 0:
            assert exptmp[hottest] / uniform[hottest] >= exptmp[coldest] / max(
                uniform[coldest], 1e-12
            )

    def test_exptmp_more_extreme_than_lintmp(self, quantized, plane_pixels):
        lin = color_quotas(quantized, plane_pixels, "lintmp")
        exp = color_quotas(quantized, plane_pixels, "exptmp")
        hottest = int(np.argmin(quantized.coolness))
        assert exp[hottest] >= lin[hottest] - 1e-12

    def test_unknown_distribution(self, quantized, plane_pixels):
        with pytest.raises(ValueError):
            color_quotas(quantized, plane_pixels, "gaussian")


class TestSelectPixels:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_selection_close_to_target_size(
        self, quantized, plane_pixels, distribution
    ):
        selected = select_pixels(
            quantized, plane_pixels, 0.5, distribution=distribution, seed=1
        )
        target = 0.5 * len(plane_pixels)
        block = 64  # selection granularity
        assert target - block < len(selected) <= target + block

    def test_selection_subset_of_group(self, quantized, plane_pixels):
        selected = select_pixels(quantized, plane_pixels, 0.4, seed=2)
        assert selected <= set(plane_pixels)

    def test_selection_is_block_aligned(self, quantized, plane_pixels):
        selected = select_pixels(quantized, plane_pixels, 0.4, seed=3)
        blocks = make_section_blocks(plane_pixels, quantized, 32, 2)
        for block in blocks:
            hit = sum(1 for p in block.pixels if p in selected)
            assert hit in (0, len(block.pixels))  # all or nothing

    def test_deterministic_per_seed(self, quantized, plane_pixels):
        a = select_pixels(quantized, plane_pixels, 0.4, seed=7)
        b = select_pixels(quantized, plane_pixels, 0.4, seed=7)
        assert a == b
        # Across many seeds, the random block choice must produce at least
        # two distinct selections (the group has more blocks than needed).
        variants = {
            frozenset(select_pixels(quantized, plane_pixels, 0.4, seed=s))
            for s in range(12)
        }
        assert len(variants) > 1

    def test_full_fraction_selects_everything(self, quantized, plane_pixels):
        selected = select_pixels(quantized, plane_pixels, 1.0, seed=0)
        assert selected == set(plane_pixels)

    def test_invalid_fraction(self, quantized, plane_pixels):
        with pytest.raises(ValueError):
            select_pixels(quantized, plane_pixels, 0.0)
        with pytest.raises(ValueError):
            select_pixels(quantized, plane_pixels, 1.5)

    @settings(max_examples=15, deadline=None)
    @given(
        st.sampled_from(DISTRIBUTIONS),
        st.floats(min_value=0.1, max_value=1.0),
        st.integers(min_value=0, max_value=100),
    )
    def test_property_selection_bounded(
        self, quantized, plane_pixels, distribution, fraction, seed
    ):
        selected = select_pixels(
            quantized, plane_pixels, fraction, distribution=distribution, seed=seed
        )
        assert 0 < len(selected) <= len(plane_pixels)
        assert selected <= set(plane_pixels)


class TestDegenerateInputs:
    """Guards against degenerate quota/selection inputs (regressions)."""

    def test_empty_group_rejected_by_quotas(self, quantized):
        with pytest.raises(ValueError, match="empty group"):
            color_quotas(quantized, [], "uniform")

    def test_empty_group_rejected_by_select(self, quantized):
        with pytest.raises(ValueError, match="empty group"):
            select_pixels(quantized, [], 0.5)

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_single_color_group_quotas_are_finite(
        self, quantized, distribution
    ):
        # All pixels from the cold side: the temperature distributions can
        # put all their weight on a color whose warmth is ~0; the uniform
        # fallback must keep quotas finite and normalized.
        cold = [(x, y) for y in range(8) for x in range(8)]
        quotas = color_quotas(quantized, cold, distribution)
        assert np.isfinite(quotas).all()
        assert quotas.sum() == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from(DISTRIBUTIONS),
        st.floats(min_value=0.05, max_value=1.0),
        st.integers(min_value=0, max_value=50),
    )
    def test_property_budget_never_over_or_under_allocated(
        self, quantized, plane_pixels, distribution, fraction, seed
    ):
        # Quota rounding must neither overshoot the budget by more than
        # one section block nor leave it unmet while blocks remain.
        block_size = 64
        selected = select_pixels(
            quantized, plane_pixels, fraction,
            distribution=distribution, seed=seed,
        )
        target = fraction * len(plane_pixels)
        assert len(selected) < target + block_size
        assert len(selected) >= min(target, len(plane_pixels))

    def test_quota_mass_on_undominant_colors_is_topped_up(self, quantized):
        # A group whose blocks are dominated by few colors still fills the
        # budget: quota mass assigned to colors that dominate no block is
        # redistributed via the leftover top-up.
        hot = [(x, y) for y in range(8) for x in range(16, 32)]
        selected = select_pixels(quantized, hot, 0.6, distribution="exptmp", seed=4)
        assert len(selected) >= min(0.6 * len(hot), len(hot))
