"""Tests for the .ztrace frame serialization format."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracer import (
    FORMAT_VERSION,
    FrameTrace,
    PixelTrace,
    RaySegment,
    SegmentKind,
    load_frame,
    save_frame,
)


def frames_equal(a: FrameTrace, b: FrameTrace) -> bool:
    if (a.width, a.height, a.samples_per_pixel, a.scene_name) != (
        b.width, b.height, b.samples_per_pixel, b.scene_name
    ):
        return False
    if a.pixels.keys() != b.pixels.keys():
        return False
    for key, ta in a.pixels.items():
        tb = b.pixels[key]
        if ta.raygen_instructions != tb.raygen_instructions:
            return False
        if len(ta.segments) != len(tb.segments):
            return False
        for sa, sb in zip(ta.segments, tb.segments):
            if (sa.kind, sa.hit, sa.shade_instructions, sa.nodes, sa.tris) != (
                sb.kind, sb.hit, sb.shade_instructions, sb.nodes, sb.tris
            ):
                return False
    return True


class TestRoundtrip:
    def test_real_frame_roundtrip(self, small_frame, tmp_path):
        path = save_frame(small_frame, tmp_path / "frame.ztrace")
        loaded = load_frame(path)
        assert frames_equal(small_frame, loaded)

    def test_costs_preserved(self, small_frame, tmp_path):
        loaded = load_frame(save_frame(small_frame, tmp_path / "f.ztrace"))
        assert loaded.total_cost() == small_frame.total_cost()

    def test_compression_beats_naive_size(self, small_frame, tmp_path):
        path = save_frame(small_frame, tmp_path / "f.ztrace")
        naive = sum(
            4 * (t.total_nodes() + t.total_tris())
            for t in small_frame.pixels.values()
        )
        assert path.stat().st_size < naive

    def test_empty_frame(self, tmp_path):
        frame = FrameTrace(width=4, height=4, samples_per_pixel=1, scene_name="e")
        loaded = load_frame(save_frame(frame, tmp_path / "e.ztrace"))
        assert loaded.pixels == {}
        assert loaded.scene_name == "e"


class TestErrorHandling:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.ztrace"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError, match="not a .ztrace"):
            load_frame(path)

    def test_bad_version(self, small_frame, tmp_path):
        path = save_frame(small_frame, tmp_path / "v.ztrace")
        raw = bytearray(path.read_bytes())
        raw[4:8] = struct.pack("<I", FORMAT_VERSION + 7)
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="unsupported"):
            load_frame(path)

    def test_truncated_body(self, small_frame, tmp_path):
        import json
        import zlib

        path = tmp_path / "t.ztrace"
        header = zlib.compress(
            json.dumps(
                {"width": 4, "height": 4, "spp": 1, "scene": "x", "pixels": 3}
            ).encode()
        )
        body = zlib.compress(b"\x00" * 4)  # far too short for 3 pixels
        path.write_bytes(
            b"ZTRC"
            + struct.pack("<I", FORMAT_VERSION)
            + struct.pack("<I", len(header))
            + header
            + struct.pack("<I", len(body))
            + body
        )
        with pytest.raises(ValueError, match="truncated"):
            load_frame(path)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_synthetic_roundtrip(tmp_path_factory, seed):
    import random

    rng = random.Random(seed)
    frame = FrameTrace(width=16, height=16, samples_per_pixel=1, scene_name="syn")
    for _ in range(rng.randint(1, 8)):
        px, py = rng.randrange(16), rng.randrange(16)
        trace = PixelTrace(px=px, py=py, raygen_instructions=rng.randrange(64))
        for _ in range(rng.randint(0, 4)):
            trace.segments.append(
                RaySegment(
                    kind=rng.choice(list(SegmentKind)),
                    nodes=[rng.randrange(2**20) for _ in range(rng.randint(0, 30))],
                    tris=[rng.randrange(2**20) for _ in range(rng.randint(0, 10))],
                    hit=rng.random() < 0.5,
                    shade_instructions=rng.randrange(64),
                )
            )
        frame.pixels[(px, py)] = trace
    tmp = tmp_path_factory.mktemp("ztrace")
    loaded = load_frame(save_frame(frame, tmp / "syn.ztrace"))
    assert frames_equal(frame, loaded)
