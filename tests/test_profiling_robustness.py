"""§III-B's claim: the profiling source barely matters.

"Profiling can be done on real GPU hardware or using Vulkan-Sim's
functional mode.  As the heatmap highlights time-consuming regions of the
ray tracing algorithm, both options yield comparable results."

We emulate two different profilers as two differently weighted cost
proxies over the same traces (a traversal-dominated one and an
instruction-dominated one) and check that Zatel's downstream decisions —
quantized structure, equation-(1) fractions, block selection — are stable
across them.
"""

import numpy as np
import pytest

from repro.core import (
    Heatmap,
    compute_fraction,
    quantize_heatmap,
    select_pixels,
)


def heatmap_from_costs(costs: np.ndarray, warp_width: int = 32) -> Heatmap:
    """Build a heatmap from an arbitrary per-pixel cost surface."""
    flattened = costs.copy()
    if warp_width > 1:
        for base in range(0, costs.shape[1], warp_width):
            run = flattened[:, base : base + warp_width]
            run[:] = run.max(axis=1, keepdims=True)
    peak = float(np.percentile(flattened[flattened > 0], 99.5))
    return Heatmap(
        temperatures=np.clip(flattened / peak, 0.0, 1.0), raw_costs=costs
    )


@pytest.fixture(scope="module")
def profiler_variants(small_frame):
    """Two cost proxies of the same frame: hardware-ish vs functional-ish."""
    height, width = small_frame.height, small_frame.width
    traversal = np.zeros((height, width))
    instructions = np.zeros((height, width))
    for (px, py), trace in small_frame.pixels.items():
        traversal[py, px] = 5.0 * trace.total_nodes() + 8.0 * trace.total_tris()
        instructions[py, px] = (
            trace.total_instructions() + 2.0 * trace.total_nodes()
        )
    return heatmap_from_costs(traversal), heatmap_from_costs(instructions)


class TestProfilingSourceRobustness:
    def test_temperature_surfaces_correlate(self, profiler_variants):
        a, b = profiler_variants
        corr = np.corrcoef(a.temperatures.ravel(), b.temperatures.ravel())[0, 1]
        assert corr > 0.9

    def test_equation_one_fractions_agree(self, profiler_variants, small_frame):
        pixels = [
            (x, y) for y in range(small_frame.height)
            for x in range(small_frame.width)
        ]
        fractions = []
        for heatmap in profiler_variants:
            quantized = quantize_heatmap(heatmap, seed=0)
            fractions.append(compute_fraction(quantized, pixels))
        assert abs(fractions[0] - fractions[1]) < 0.1

    def test_selected_blocks_overlap(self, profiler_variants, small_frame):
        pixels = [
            (x, y) for y in range(small_frame.height)
            for x in range(small_frame.width)
        ]
        selections = []
        for heatmap in profiler_variants:
            quantized = quantize_heatmap(heatmap, seed=0)
            selections.append(
                select_pixels(quantized, pixels, 0.5, seed=0)
            )
        a, b = selections
        jaccard = len(a & b) / len(a | b)
        # The exact block draw is random, but the two profilers must agree
        # far beyond chance (independent 50% picks would give ~1/3).
        assert jaccard > 0.45
