"""Tests for the procedural mesh generators."""

import numpy as np
import pytest

from repro.scene.geometry import AABB
from repro.scene.meshes import (
    box,
    column_grid,
    cylinder,
    fractal_tree,
    ground_plane,
    icosphere,
    quad,
    random_blob_field,
    transform,
)
from repro.scene.vecmath import length, vec3


def bounds_of(triangles) -> AABB:
    b = AABB.empty()
    for t in triangles:
        b = b.union(t.bounds())
    return b


def total_area(triangles) -> float:
    return sum(t.area() for t in triangles)


class TestQuadAndPlane:
    def test_quad_is_two_triangles(self):
        tris = quad(vec3(0, 0, 0), vec3(1, 0, 0), vec3(0, 1, 0))
        assert len(tris) == 2
        assert total_area(tris) == pytest.approx(1.0)

    def test_ground_plane_extent_and_height(self):
        tris = ground_plane(5.0, y=0.25)
        b = bounds_of(tris)
        assert np.allclose(b.lo, [-5, 0.25, -5])
        assert np.allclose(b.hi, [5, 0.25, 5])

    def test_material_id_propagates(self):
        tris = ground_plane(1.0, material_id=3)
        assert all(t.material_id == 3 for t in tris)


class TestBox:
    def test_twelve_triangles(self):
        assert len(box(vec3(0, 0, 0), vec3(1, 1, 1))) == 12

    def test_surface_area(self):
        tris = box(vec3(0, 0, 0), vec3(1, 2, 3))
        # Box 2x4x6: area = 2*(8+24+12) = 88.
        assert total_area(tris) == pytest.approx(88.0)

    def test_bounds(self):
        b = bounds_of(box(vec3(1, 2, 3), vec3(0.5, 0.5, 0.5)))
        assert np.allclose(b.lo, [0.5, 1.5, 2.5])
        assert np.allclose(b.hi, [1.5, 2.5, 3.5])


class TestIcosphere:
    @pytest.mark.parametrize("level,faces", [(0, 20), (1, 80), (2, 320)])
    def test_face_counts(self, level, faces):
        assert len(icosphere(vec3(0, 0, 0), 1.0, subdivisions=level)) == faces

    def test_vertices_on_sphere(self):
        center = vec3(1, 2, 3)
        for tri in icosphere(center, 2.0, subdivisions=2):
            for v in (tri.v0, tri.v1, tri.v2):
                assert length(v - center) == pytest.approx(2.0, rel=1e-9)

    def test_area_approaches_sphere(self):
        area = total_area(icosphere(vec3(0, 0, 0), 1.0, subdivisions=3))
        sphere = 4.0 * np.pi
        assert 0.97 * sphere < area < sphere


class TestCylinderTreeColumns:
    def test_cylinder_triangle_count(self):
        assert len(cylinder(vec3(0, 0, 0), 2.0, 0.5, segments=8)) == 16

    def test_cylinder_height_extent(self):
        b = bounds_of(cylinder(vec3(0, 1, 0), 3.0, 0.5))
        assert b.lo[1] == pytest.approx(1.0)
        assert b.hi[1] == pytest.approx(4.0)

    def test_fractal_tree_deterministic(self):
        a = fractal_tree(vec3(0, 0, 0), 2.0, 2, np.random.default_rng(9))
        b = fractal_tree(vec3(0, 0, 0), 2.0, 2, np.random.default_rng(9))
        assert len(a) == len(b)
        assert np.allclose(a[10].v0, b[10].v0)

    def test_fractal_tree_grows_upward(self):
        tris = fractal_tree(vec3(0, 0, 0), 2.0, 3, np.random.default_rng(2))
        b = bounds_of(tris)
        assert b.hi[1] > 2.0  # taller than the trunk alone

    def test_tree_uses_both_materials(self):
        tris = fractal_tree(
            vec3(0, 0, 0), 2.0, 2, np.random.default_rng(4),
            trunk_material=1, leaf_material=2,
        )
        ids = {t.material_id for t in tris}
        assert ids == {1, 2}

    def test_column_grid_count(self):
        tris = column_grid(2, 3, 2.0, 4.0, 0.3)
        assert len(tris) == 2 * 3 * 12  # 6 segments x 2 tris per column


class TestBlobsAndTransform:
    def test_blob_field_count_and_floor(self):
        rng = np.random.default_rng(3)
        tris = random_blob_field(4, 5.0, (0.5, 0.5), rng, subdivisions=0)
        assert len(tris) == 4 * 20
        # Spheres rest on the plane: no triangle dips below y=0 (radius = y).
        assert bounds_of(tris).lo[1] >= -1e-9

    def test_transform_scale_translate(self):
        tris = box(vec3(0, 0, 0), vec3(1, 1, 1))
        moved = transform(tris, translate=vec3(10, 0, 0), scale=2.0)
        b = bounds_of(moved)
        assert np.allclose(b.lo, [8, -2, -2])
        assert np.allclose(b.hi, [12, 2, 2])

    def test_transform_preserves_material(self):
        tris = box(vec3(0, 0, 0), vec3(1, 1, 1), material_id=5)
        assert all(t.material_id == 5 for t in transform(tris, scale=3.0))
