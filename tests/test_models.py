"""Tests for the baseline predictors (sampling-only, analytical, PKA)."""

import pytest

from repro.gpu import MOBILE_SOC, METRICS
from repro.models import AnalyticalModel, PKAProjection, SamplingPredictor


class TestSamplingPredictor:
    def test_extrapolates_cycles(self, small_scene, small_frame, small_full_stats):
        predictor = SamplingPredictor(MOBILE_SOC)
        prediction = predictor.predict(small_scene, small_frame, 0.5)
        assert prediction.fraction == 0.5
        # Raw sampled cycles are below the full run; the extrapolation
        # multiplies back up into the full run's neighbourhood.
        assert prediction.stats.cycles <= small_full_stats.cycles
        assert prediction.metrics["cycles"] >= prediction.stats.cycles

    def test_speedup_increases_as_fraction_drops(
        self, small_scene, small_frame, small_full_stats
    ):
        predictor = SamplingPredictor(MOBILE_SOC)
        lo = predictor.predict(small_scene, small_frame, 0.25)
        hi = predictor.predict(small_scene, small_frame, 0.75)
        assert lo.speedup_vs(small_full_stats) > hi.speedup_vs(small_full_stats)

    def test_runs_on_full_gpu(self, small_scene, small_frame):
        prediction = SamplingPredictor(MOBILE_SOC).predict(
            small_scene, small_frame, 0.5
        )
        assert prediction.stats.config_name == "MobileSoC"  # not downscaled

    def test_distribution_variants(self, small_scene, small_frame):
        for distribution in ("uniform", "lintmp", "exptmp"):
            prediction = SamplingPredictor(
                MOBILE_SOC, distribution=distribution
            ).predict(small_scene, small_frame, 0.4)
            assert prediction.metrics["cycles"] > 0


class TestAnalyticalModel:
    def test_produces_all_metrics(self, small_scene, small_frame):
        prediction = AnalyticalModel(MOBILE_SOC).predict(small_scene, small_frame)
        assert set(prediction.metrics) == set(METRICS)
        assert prediction.metrics["cycles"] > 0
        assert prediction.bottleneck in prediction.intervals

    def test_cycles_in_same_universe_as_simulator(
        self, small_scene, small_frame, small_full_stats
    ):
        # Analytical models are coarse (GCoM: 26.7% MAE); require only
        # order-of-magnitude agreement here.
        prediction = AnalyticalModel(MOBILE_SOC).predict(small_scene, small_frame)
        ratio = prediction.metrics["cycles"] / small_full_stats.cycles
        assert 0.05 < ratio < 20.0

    def test_work_is_trivial_compared_to_simulation(
        self, small_frame, small_full_stats
    ):
        assert AnalyticalModel.work_units(small_frame) < small_full_stats.work_units

    def test_intervals_nonnegative(self, small_scene, small_frame):
        prediction = AnalyticalModel(MOBILE_SOC).predict(small_scene, small_frame)
        assert all(v >= 0 for v in prediction.intervals.values())


class TestPKAProjection:
    def test_stops_and_projects(self, small_scene, small_frame):
        prediction = PKAProjection(MOBILE_SOC).predict(small_scene, small_frame)
        assert 0.1 <= prediction.stopped_fraction <= 1.0
        assert len(prediction.checkpoints) >= 1
        assert prediction.metrics["cycles"] > 0

    def test_checkpoints_monotone_fractions(self, small_scene, small_frame):
        prediction = PKAProjection(MOBILE_SOC).predict(small_scene, small_frame)
        fractions = [f for f, _ in prediction.checkpoints]
        assert fractions == sorted(fractions)

    def test_tight_threshold_runs_longer(self, small_scene, small_frame):
        loose = PKAProjection(MOBILE_SOC, stability_threshold=0.5).predict(
            small_scene, small_frame
        )
        tight = PKAProjection(MOBILE_SOC, stability_threshold=0.0001).predict(
            small_scene, small_frame
        )
        assert tight.stopped_fraction >= loose.stopped_fraction

    def test_validation(self):
        with pytest.raises(ValueError):
            PKAProjection(MOBILE_SOC, step_fraction=0.0)
