"""Unit tests for the CI bench-regression gate (no benchmarks run here).

The checker compares a fresh ``bench_tracer.py`` payload against the
committed baseline; these tests feed it synthetic payloads and the real
committed baseline file to pin the gating semantics: correctness drift
and big relative slowdowns fail, timing wobble only warns.
"""

from __future__ import annotations

import copy
import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    Path(__file__).parent.parent / "benchmarks" / "check_bench_regression.py",
)
checker = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(checker)

BASELINE_PATH = checker.DEFAULT_BASELINE


@pytest.fixture()
def baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


def test_committed_baseline_exists_and_is_quick_mode(baseline):
    assert baseline["benchmark"] == "tracer_backends"
    assert baseline["identical"] is True
    assert baseline["scenes"], "baseline must cover at least one scene"
    assert baseline["predict"]["identical_metrics"] is True


def test_baseline_vs_itself_passes(baseline):
    report = checker.compare(baseline, baseline, max_slowdown=0.30)
    assert not report.failed
    assert not report.warned


def test_slowdown_within_band_only_warns(baseline):
    current = copy.deepcopy(baseline)
    for entry in current["scenes"]:
        entry["rays_per_sec_speedup"] *= 0.85  # -15%: noise territory
    report = checker.compare(current, baseline, max_slowdown=0.30)
    assert report.warned
    assert not report.failed


def test_slowdown_beyond_band_fails(baseline):
    current = copy.deepcopy(baseline)
    current["scenes"][0]["rays_per_sec_speedup"] *= 0.5  # -50%
    report = checker.compare(current, baseline, max_slowdown=0.30)
    assert report.failed


def test_metric_drift_fails_even_when_fast(baseline):
    current = copy.deepcopy(baseline)
    current["predict"]["metrics"]["cycles"] += 1e-9
    current["predict"]["speedup"] *= 10  # speed cannot buy back correctness
    report = checker.compare(current, baseline, max_slowdown=0.30)
    assert report.failed
    assert any("metrics drifted" in line for line in report.lines)


def test_backend_divergence_fails(baseline):
    current = copy.deepcopy(baseline)
    current["identical"] = False
    report = checker.compare(current, baseline, max_slowdown=0.30)
    assert report.failed


def test_ray_count_drift_fails(baseline):
    current = copy.deepcopy(baseline)
    current["scenes"][0]["packet"]["rays"] += 1
    report = checker.compare(current, baseline, max_slowdown=0.30)
    assert report.failed


def test_unknown_scene_only_warns(baseline):
    current = copy.deepcopy(baseline)
    extra = copy.deepcopy(current["scenes"][0])
    extra["scene"] = "NEWSCENE"
    current["scenes"].append(extra)
    report = checker.compare(current, baseline, max_slowdown=0.30)
    assert not report.failed
    assert any("NEWSCENE" in line and "no baseline" in line
               for line in report.lines)


def test_speedup_improvement_passes(baseline):
    current = copy.deepcopy(baseline)
    for entry in current["scenes"]:
        entry["rays_per_sec_speedup"] *= 1.5
    report = checker.compare(current, baseline, max_slowdown=0.30)
    assert not report.failed
