"""Tests for the observability dashboard: query parsing, pagination,
the router against both sources (live service and offline .zperf), the
standalone trace server, and the startup ready-line protocol.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.gpu.telemetry import ServiceStats
from repro.harness.runner import Runner
from repro.service import ZatelService
from repro.service.dashboard import (
    DASHBOARD_MARKER,
    DashboardRouter,
    MAX_TIMELINE_WINDOWS,
    QueryError,
    RawBody,
    TraceSource,
    _lane_matches,
    _paginate,
    make_trace_server,
    parse_timeline_query,
    structure_counters,
    timeline_payload,
)
from repro.service.protocol import (
    READY_PREFIX,
    format_ready_line,
    parse_ready_line,
)

DATA = Path(__file__).parent / "data"
ZPERF_FIXTURE = DATA / "sprng_24.zperf"


def _window(component, kind, start, end):
    return {"component": component, "kind": kind, "start": start, "end": end}


def _query(**overrides):
    parsed = parse_timeline_query("")
    parsed.update(overrides)
    return parsed


# ---------------------------------------------------------------------------
# query parsing
# ---------------------------------------------------------------------------


class TestParseTimelineQuery:
    def test_empty_query_defaults(self):
        parsed = parse_timeline_query("")
        assert parsed == {
            "trace": None, "start": None, "end": None,
            "lanes": None, "max_windows": None, "max_per_lane": None,
        }

    def test_full_query(self):
        parsed = parse_timeline_query(
            "trace=t1&start=10&end=20.5&lanes=g0.,issue_stall&"
            "max_windows=100&max_per_lane=4"
        )
        assert parsed == {
            "trace": "t1", "start": 10.0, "end": 20.5,
            "lanes": ["g0.", "issue_stall"],
            "max_windows": 100, "max_per_lane": 4,
        }

    @pytest.mark.parametrize(
        "query",
        [
            "start=abc",
            "end=xyz",
            "start=-1",
            "start=50&end=10",
            "start=10&end=10",
            "end=0",  # end <= implicit start 0
            "max_windows=0",
            "max_per_lane=-2",
            "max_windows=many",
            "bogus=1",
        ],
    )
    def test_malformed_queries_raise(self, query):
        with pytest.raises(QueryError):
            parse_timeline_query(query)

    def test_unknown_parameter_named_in_error(self):
        with pytest.raises(QueryError, match="bogus"):
            parse_timeline_query("bogus=1&start=0")

    def test_blank_values_are_absent(self):
        parsed = parse_timeline_query("start=&end=&lanes=")
        assert parsed["start"] is None
        assert parsed["end"] is None
        assert parsed["lanes"] is None


# ---------------------------------------------------------------------------
# lane filtering and pagination
# ---------------------------------------------------------------------------


class TestLaneMatches:
    def test_exact_pair_kind_and_prefix(self):
        assert _lane_matches("g0.sm1", "issue_stall", ["g0.sm1:issue_stall"])
        assert _lane_matches("g3.sm0", "issue_stall", ["issue_stall"])
        assert _lane_matches("g0.sm1", "busy", ["g0."])
        assert not _lane_matches("g1.sm1", "busy", ["g0."])
        assert not _lane_matches("g0.sm1", "busy", ["issue_stall"])


class TestPaginate:
    def test_under_limit_is_whole_page(self):
        events = [_window("a", "busy", float(i), float(i) + 0.5) for i in range(5)]
        page, next_start = _paginate(events, 5)
        assert page == events
        assert next_start is None

    def test_cuts_at_window_start_boundary(self):
        events = [_window("a", "busy", float(i), float(i) + 0.5) for i in range(10)]
        page, next_start = _paginate(events, 4)
        assert [e["start"] for e in page] == [0.0, 1.0, 2.0, 3.0]
        assert next_start == 4.0
        # the next page picks up exactly where this one stopped
        rest = [e for e in events if e["start"] >= next_start]
        page2, next2 = _paginate(rest, 4)
        assert [e["start"] for e in page2] == [4.0, 5.0, 6.0, 7.0]
        assert next2 == 8.0

    def test_co_started_batch_exceeds_budget_but_advances(self):
        # 6 windows share start 0.0: a budget of 4 must return all 6,
        # otherwise next_start would never move and clients would loop.
        events = [_window(f"c{i}", "busy", 0.0, 1.0) for i in range(6)]
        events.append(_window("late", "busy", 9.0, 10.0))
        page, next_start = _paginate(events, 4)
        assert len(page) == 6
        assert all(e["start"] == 0.0 for e in page)
        assert next_start == 9.0

    def test_co_started_final_batch_has_no_next(self):
        events = [_window(f"c{i}", "busy", 0.0, 1.0) for i in range(6)]
        page, next_start = _paginate(events, 4)
        assert len(page) == 6
        assert next_start is None


class TestTimelinePayload:
    EVENTS = [
        _window("g0.sm0", "busy", 0.0, 40.0),
        _window("g0.sm0", "busy", 60.0, 100.0),
        _window("g1.sm0", "issue_stall", 20.0, 30.0),
    ]

    def test_slices_then_filters_then_counts(self):
        payload = timeline_payload(
            self.EVENTS, 100.0, _query(start=0.0, end=50.0, lanes=["g0."])
        )
        assert payload["lane_count"] == 1
        lane = payload["lanes"][0]
        assert lane["component"] == "g0.sm0"
        assert lane["windows"] == [[0.0, 40.0]]
        assert payload["window_count"] == 1
        assert payload["range"] == {"start": 0.0, "end": 50.0}
        assert payload["next_start"] is None

    def test_pagination_reports_next_start(self):
        events = [_window("a", "busy", float(i), i + 0.5) for i in range(10)]
        payload = timeline_payload(events, 10.0, _query(max_windows=3))
        assert payload["window_count"] == 3
        assert payload["next_start"] == 3.0

    def test_max_windows_is_capped(self):
        events = [_window("a", "busy", float(i), i + 0.5) for i in range(10)]
        payload = timeline_payload(
            events, 10.0, _query(max_windows=MAX_TIMELINE_WINDOWS * 10)
        )
        assert payload["window_count"] == 10

    def test_activity_rows_only_with_deltas(self):
        no_deltas = timeline_payload(self.EVENTS, 100.0, _query())
        assert "activity" not in no_deltas
        with_deltas = timeline_payload(
            self.EVENTS, 100.0, _query(),
            deltas=[{"core.instructions": 4}, {"core.instructions": 2}],
        )
        rows = {row["label"]: row for row in with_deltas["activity"]}
        assert rows["instructions"]["series"] == [4, 2]
        assert rows["instructions"]["total"] == 6
        # all-zero rows are dropped from the payload
        assert "DRAM requests" not in rows

    def test_payload_is_json_serializable(self):
        payload = timeline_payload(self.EVENTS, 100.0, _query(max_per_lane=1))
        assert payload == json.loads(json.dumps(payload))


# ---------------------------------------------------------------------------
# structured metrics helpers
# ---------------------------------------------------------------------------


def test_structure_counters_nests_by_component():
    nested = structure_counters(
        {"service.requests": 3.0, "service.cache_hits": 1.0, "fleet.heartbeats": 9.0}
    )
    assert nested == {
        "service": {"requests": 3.0, "cache_hits": 1.0},
        "fleet": {"heartbeats": 9.0},
    }


def test_structure_counters_handles_dotless_names():
    assert structure_counters({"uptime": 2.0}) == {"uptime": {"uptime": 2.0}}


# ---------------------------------------------------------------------------
# the router against the offline trace source
# ---------------------------------------------------------------------------


class TestRouterOffline:
    @pytest.fixture()
    def router(self):
        return DashboardRouter(TraceSource(ZPERF_FIXTURE), stats=ServiceStats())

    def test_handles_only_dashboard_paths(self, router):
        assert router.handles("/dashboard")
        assert router.handles("/api/timeline")
        assert not router.handles("/predict")
        assert not router.handles("/metrics")

    def test_dashboard_page_carries_marker(self, router):
        status, payload = router.route("GET", "/dashboard")
        assert status == 200
        assert isinstance(payload, RawBody)
        assert DASHBOARD_MARKER in payload.body.decode()
        assert payload.content_type.startswith("text/html")
        assert router.stats.dashboard_hits == 1
        assert router.stats.api_hits == 0

    def test_timeline_serves_fixture_lanes(self, router):
        status, payload = router.route("GET", "/api/timeline")
        assert status == 200
        assert payload["total_cycles"] == 646.0
        assert payload["lane_count"] == 24
        assert payload["trace"] == "sprng_24.zperf"
        assert payload["traces"][0]["id"] == "sprng_24.zperf"
        assert router.stats.api_hits == 1

    def test_timeline_unknown_trace_404s(self, router):
        status, payload = router.route("GET", "/api/timeline", "trace=nope")
        assert status == 404
        assert payload["traces"] == ["sprng_24.zperf"]

    def test_timeline_bad_query_400s(self, router):
        status, payload = router.route("GET", "/api/timeline", "start=50&end=10")
        assert status == 400
        assert "error" in payload

    def test_metrics_view_is_trace_mode(self, router):
        status, payload = router.route("GET", "/api/metrics")
        assert status == 200
        assert payload["mode"] == "trace"
        assert "counters" in payload

    def test_fleet_jobs_campaigns_404_offline(self, router):
        for path in ("/api/fleet", "/api/jobs", "/api/campaigns"):
            status, payload = router.route("GET", path)
            assert status == 404, path
            assert "error" in payload

    def test_unknown_api_path_404s(self, router):
        status, payload = router.route("GET", "/api/nope")
        assert status == 404

    def test_non_get_405s(self, router):
        status, payload = router.route("POST", "/api/timeline")
        assert status == 405


# ---------------------------------------------------------------------------
# the standalone trace server (zatel trace --serve)
# ---------------------------------------------------------------------------


def _get_raw(base: str, path: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(f"{base}{path}", timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestTraceServer:
    @pytest.fixture()
    def base(self):
        server = make_trace_server(ZPERF_FIXTURE)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    def test_root_redirects_to_dashboard(self, base):
        request = urllib.request.Request(f"{base}/")
        with urllib.request.urlopen(request, timeout=30) as response:
            # urllib follows the 302; we land on the page itself
            assert response.status == 200
            assert DASHBOARD_MARKER.encode() in response.read()

    def test_timeline_json_over_http(self, base):
        status, body = _get_raw(base, "/api/timeline?max_per_lane=2")
        assert status == 200
        payload = json.loads(body)
        assert payload["lane_count"] == 24
        assert all(len(lane["windows"]) <= 2 for lane in payload["lanes"])

    def test_bad_range_400s_over_http(self, base):
        status, body = _get_raw(base, "/api/timeline?start=-5")
        assert status == 400
        assert b"error" in body

    def test_unknown_path_404s(self, base):
        status, _ = _get_raw(base, "/definitely/not/here")
        assert status == 404


# ---------------------------------------------------------------------------
# ready-line protocol (the flaky-port fix)
# ---------------------------------------------------------------------------


class TestReadyLine:
    def test_format_is_pinned(self):
        # The smoke harness greps for this exact shape; changing it is a
        # breaking change to every CI smoke job.
        assert format_ready_line("127.0.0.1", 8321) == (
            "ZATEL_SERVE_READY host=127.0.0.1 port=8321"
        )
        assert format_ready_line("0.0.0.0", 80).startswith(READY_PREFIX)

    def test_round_trip(self):
        line = format_ready_line("127.0.0.1", 43210)
        assert parse_ready_line(line) == ("127.0.0.1", 43210)
        assert parse_ready_line(line + "\n") == ("127.0.0.1", 43210)

    def test_tolerates_extra_fields(self):
        parsed = parse_ready_line(
            "ZATEL_SERVE_READY host=10.0.0.2 port=9000 workers=4 fleet=2"
        )
        assert parsed == ("10.0.0.2", 9000)

    @pytest.mark.parametrize(
        "line",
        [
            "",
            "zatel service listening on http://127.0.0.1:8321",
            "ZATEL_SERVE_READY",
            "ZATEL_SERVE_READY host=127.0.0.1",
            "ZATEL_SERVE_READY port=8321",
            "ZATEL_SERVE_READY host=127.0.0.1 port=notaport",
            "NOT_THE_PREFIX host=127.0.0.1 port=8321",
        ],
    )
    def test_rejects_non_ready_lines(self, line):
        assert parse_ready_line(line) is None


# ---------------------------------------------------------------------------
# the live service end to end
# ---------------------------------------------------------------------------


def _get_json(base: str, path: str) -> tuple[int, dict]:
    status, body = _get_raw(base, path)
    return status, json.loads(body)


def _post_json(base: str, path: str, body: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        f"{base}{path}", data=json.dumps(body).encode(), method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestServiceDashboard:
    @pytest.fixture()
    def service(self, tmp_path):
        service = ZatelService(
            port=0,
            runner=Runner(cache_dir=tmp_path / "cache"),
            workers=1,
            queue_capacity=4,
        )
        with service.background():
            yield service, f"http://127.0.0.1:{service.port}"

    def test_dashboard_and_timeline_after_real_predict(self, service):
        svc, base = service

        status, page = _get_raw(base, "/dashboard")
        assert status == 200
        assert DASHBOARD_MARKER.encode() in page

        # no prediction yet: the timeline is honestly absent
        status, missing = _get_json(base, "/api/timeline")
        assert status == 404
        assert missing["traces"] == []

        request = {
            "scene": "SPRNG", "size": 16, "spp": 1, "seed": 0,
            "backend": "packet", "gpu": "mobile",
        }
        status, served = _post_json(base, "/predict", request)
        assert status == 200, served

        status, timeline = _get_json(base, "/api/timeline")
        assert status == 200
        assert timeline["lane_count"] > 0
        assert timeline["total_cycles"] > 0
        assert timeline["traces"][0]["id"] == "t1"
        # lanes carry the per-group prefix of the live capture path
        assert all(
            lane["component"].startswith("g") for lane in timeline["lanes"]
        )
        for lane in timeline["lanes"]:
            starts = [start for start, _ in lane["windows"]]
            assert starts == sorted(starts)

        # lane filtering over HTTP
        status, filtered = _get_json(base, "/api/timeline?lanes=g0.")
        assert status == 200
        assert 0 < filtered["lane_count"] <= timeline["lane_count"]
        assert all(
            lane["component"].startswith("g0.") for lane in filtered["lanes"]
        )

        status, error = _get_json(base, "/api/timeline?start=9&end=3")
        assert status == 400

    def test_metrics_fleet_jobs_campaign_views(self, service):
        svc, base = service

        status, metrics = _get_json(base, "/api/metrics")
        assert status == 200
        assert metrics["mode"] == "service"
        assert "service" in metrics["counters"]
        assert "queue" in metrics and "histograms" in metrics

        # single-process service: the fleet view is honestly absent
        status, fleet = _get_json(base, "/api/fleet")
        assert status == 404

        status, jobs = _get_json(base, "/api/jobs")
        assert status == 200
        assert jobs["tracked"] == 0

        status, campaigns = _get_json(base, "/api/campaigns")
        assert status == 200
        assert campaigns["campaigns"] == []

        # the dashboard observes itself on the bus
        status, metrics = _get_json(base, "/api/metrics")
        service_counters = metrics["counters"]["service"]
        assert service_counters["api_hits"] >= 4
        assert svc.stats.api_hits >= 4

    def test_trace_ring_evicts_oldest(self, service):
        svc, base = service
        for i in range(svc.trace_history + 2):
            svc._record_trace(f"label {i}", [_window("sm0", "busy", 0.0, 1.0)], 1.0, [])
        status, timeline = _get_json(base, "/api/timeline")
        assert status == 200
        traces = timeline["traces"]
        assert len(traces) == svc.trace_history
        # oldest entries evicted: t1/t2 gone, newest kept
        ids = [entry["id"] for entry in traces]
        assert "t1" not in ids and "t2" not in ids
        assert timeline["trace"] == ids[-1]
