"""Tests for the shared memory subsystem (interconnect + L2 + DRAM)."""

import pytest

from repro.gpu import MOBILE_SOC, RTX_2060
from repro.gpu.memory import MemorySubsystem


@pytest.fixture()
def memory():
    return MemorySubsystem(MOBILE_SOC)


class TestReadPath:
    def test_l2_hit_faster_than_dram(self, memory):
        cold = memory.access(0, 0.0)
        warm = memory.access(0, cold)
        assert warm - cold < cold - 0.0

    def test_l2_hit_latency_magnitude(self, memory):
        memory.access(0, 0.0)  # fill
        start = 10_000.0
        done = memory.access(0, start)
        # Load-to-use for an L2 hit is around the configured 160 cycles
        # (plus small port/bank waits).
        assert MOBILE_SOC.l2_slice.latency * 0.8 <= done - start <= (
            MOBILE_SOC.l2_slice.latency * 1.5
        )

    def test_lines_interleave_across_slices(self, memory):
        line = MOBILE_SOC.l1d.line_bytes
        for i in range(MOBILE_SOC.num_mem_partitions):
            memory.access(i * line, 0.0)
        touched = sum(
            1 for s in memory.l2_slices if s.stats.accesses > 0
        )
        assert touched == MOBILE_SOC.num_mem_partitions

    def test_cold_misses_reach_dram(self, memory):
        memory.access(0, 0.0)
        assert memory.dram_stats().requests == 1
        memory.access(0, 1000.0)  # L2 hit: no new DRAM traffic
        assert memory.dram_stats().requests == 1


class TestStorePath:
    def test_store_touches_l2_not_dram(self, memory):
        memory.store(0x8000_0000, 0.0)
        assert memory.l2_stats().accesses == 1
        # Write no-allocate-fetch: a store miss does not read DRAM.
        assert memory.dram_stats().requests == 0

    def test_store_warms_l2_for_reads(self, memory):
        memory.store(0x8000_0000, 0.0)
        before = memory.dram_stats().requests
        memory.access(0x8000_0000, 100.0)
        assert memory.dram_stats().requests == before  # read hits L2


class TestAggregation:
    def test_l2_stats_aggregate_all_slices(self, memory):
        line = MOBILE_SOC.l1d.line_bytes
        for i in range(8):
            memory.access(i * line, 0.0)
        assert memory.l2_stats().accesses == 8

    def test_finalize_closes_dram_intervals(self, memory):
        memory.access(0, 0.0)
        memory.finalize()
        assert memory.dram_stats().pending_cycles > 0

    def test_downscaled_subsystem_smaller(self):
        small = MemorySubsystem(MOBILE_SOC.downscale(4))
        assert len(small.l2_slices) == 1
        assert len(small.dram_channels) == 1

    def test_contention_grows_under_burst(self):
        quiet = MemorySubsystem(MOBILE_SOC)
        busy = MemorySubsystem(MOBILE_SOC)
        line = MOBILE_SOC.l1d.line_bytes
        # One isolated access vs the same access behind a 100-line burst
        # to the same partition.
        target = 128 * 1024 * 1024
        isolated = quiet.access(target, 0.0)
        partitions = MOBILE_SOC.num_mem_partitions
        for i in range(100):
            busy.access(i * line * partitions, 0.0)  # all hit partition 0
        contended = busy.access(target, 0.0)
        assert contended > isolated
