"""Tests for the shared timeline model (repro.viz.timeline_model) and
the telemetry window slicing/downsampling the dashboard API builds on.

The load-bearing contract: the terminal renderer and the dashboard's
``/api/timeline`` consume the *same* lane model, so the committed
``.zperf`` fixture must render byte-identically through the refactored
path, and the JSON payload must expose exactly the lanes the renderer
draws, in the same order.
"""

import json
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.gpu import load_zperf
from repro.gpu.telemetry import downsample_events, slice_events
from repro.viz.timeline import render_interval_activity, render_timeline
from repro.viz.timeline_model import (
    ACTIVITY_ROWS,
    Lane,
    activity_series,
    build_lanes,
    lane_cells,
    lanes_payload,
    prediction_deltas,
    prediction_events,
)

DATA = Path(__file__).parent / "data"
ZPERF_FIXTURE = DATA / "sprng_24.zperf"
RENDER_FIXTURE = DATA / "sprng_24_timeline.txt"


def _window(component, kind, start, end):
    return {"component": component, "kind": kind, "start": start, "end": end}


# ----------------------------------------------------------------------
# byte identity: the refactor must not have moved the terminal renderer
# ----------------------------------------------------------------------


def test_fixture_renders_byte_identical():
    """The committed SPRNG trace renders byte-for-byte as committed.

    This pins the whole model: lane grouping, busiest-first ordering,
    stable ties, per-cell shade math, label alignment, the activity
    sparklines — any drift in timeline_model shows up here.
    """
    data = load_zperf(ZPERF_FIXTURE)
    text = (
        render_timeline(data["events"], data["header"]["cycles"])
        + "\n\n"
        + render_interval_activity([row["d"] for row in data["intervals"]])
        + "\n"
    )
    assert text == RENDER_FIXTURE.read_text()


def test_api_lanes_match_rendered_lanes():
    """The JSON payload lists the same lanes, same order, as the render."""
    data = load_zperf(ZPERF_FIXTURE)
    total = data["header"]["cycles"]
    payload = lanes_payload(data["events"], total)
    rendered = render_timeline(data["events"], total, max_lanes=10**9)
    rendered_labels = [
        line.split("|")[0].strip()
        for line in rendered.splitlines()[1:]
    ]
    api_labels = [
        f"{lane['component']} {lane['kind']}" for lane in payload["lanes"]
    ]
    assert api_labels == rendered_labels


# ----------------------------------------------------------------------
# the model proper
# ----------------------------------------------------------------------


def test_build_lanes_orders_busiest_first_with_stable_ties():
    events = [
        _window("b", "busy", 0.0, 1.0),
        _window("a", "busy", 0.0, 5.0),
        _window("c", "busy", 1.0, 2.0),  # ties with b; b appeared first
    ]
    lanes = build_lanes(events)
    assert [lane.component for lane in lanes] == ["a", "b", "c"]
    assert lanes[0].busy == 5.0
    assert lanes[0].label == "a busy"


def test_build_lanes_accepts_objects_and_dicts():
    obj = SimpleNamespace(component="sm0", kind="busy", start=0.0, end=2.0)
    lanes = build_lanes([obj, _window("sm0", "busy", 3.0, 4.0)])
    assert len(lanes) == 1
    assert lanes[0].windows == ((0.0, 2.0), (3.0, 4.0))
    assert lanes[0].busy == 3.0


def test_lane_cells_empty_and_degenerate_totals():
    assert lane_cells((), 100.0, 4) == [0.0, 0.0, 0.0, 0.0]
    assert lane_cells(((0.0, 1.0),), 0.0, 3) == [0.0, 0.0, 0.0]
    assert lane_cells(((0.0, 1.0),), -1.0, 2) == [0.0, 0.0]


def test_lane_cells_covers_fractions_and_clamps():
    # one window covering the first half exactly: full, full, empty, empty
    assert lane_cells(((0.0, 50.0),), 100.0, 4) == [1.0, 1.0, 0.0, 0.0]
    # overlapping windows cannot push a cell past 1.0
    cells = lane_cells(((0.0, 10.0), (0.0, 10.0)), 10.0, 1)
    assert cells == [1.0]


def test_activity_series_returns_every_row_including_zero():
    deltas = [{"core.instructions": 10}, {"core.instructions": 5}]
    rows = activity_series(deltas)
    assert [label for label, _ in rows] == [label for label, _, _ in ACTIVITY_ROWS]
    by_label = dict(rows)
    assert by_label["instructions"] == [10, 5]
    assert by_label["DRAM requests"] == [0, 0]


def test_lanes_payload_json_round_trip():
    events = [
        _window("sm0", "busy", 0.0, 4.0),
        _window("sm0", "busy", 6.0, 8.0),
        _window("dram.0", "wait", 1.0, 2.0),
    ]
    payload = lanes_payload(events, 10.0)
    assert payload == json.loads(json.dumps(payload))
    assert payload["total_cycles"] == 10.0
    assert payload["lane_count"] == 2
    first = payload["lanes"][0]
    assert first["component"] == "sm0"
    assert first["windows"] == [[0.0, 4.0], [6.0, 8.0]]
    assert first["busy"] == 6.0
    assert first["busy_fraction"] == pytest.approx(0.6)


def test_lanes_payload_empty_trace():
    payload = lanes_payload([], 0.0)
    assert payload["lanes"] == []
    assert payload["lane_count"] == 0


def test_lane_is_frozen():
    lane = Lane("sm0", "busy", ((0.0, 1.0),), 1.0)
    with pytest.raises(Exception):
        lane.busy = 2.0


# ----------------------------------------------------------------------
# slicing (the pagination substrate)
# ----------------------------------------------------------------------


def test_slice_events_empty_trace():
    assert slice_events([]) == []
    assert slice_events([], start=5.0, end=10.0) == []


def test_slice_events_clips_windows_at_range_edges():
    events = [_window("sm0", "busy", 0.0, 100.0)]
    sliced = slice_events(events, start=25.0, end=75.0)
    assert len(sliced) == 1
    assert (sliced[0]["start"], sliced[0]["end"]) == (25.0, 75.0)
    # stitching adjacent pages reconstructs the original occupancy
    left = slice_events(events, start=0.0, end=50.0)
    right = slice_events(events, start=50.0, end=100.0)
    assert left[0]["end"] == right[0]["start"] == 50.0
    total = (left[0]["end"] - left[0]["start"]) + (
        right[0]["end"] - right[0]["start"]
    )
    assert total == 100.0


def test_slice_events_single_window_inside_range_unchanged():
    events = [_window("sm0", "busy", 10.0, 20.0)]
    assert slice_events(events, start=0.0, end=646.0) == events


def test_slice_events_range_past_end_of_trace():
    events = [_window("sm0", "busy", 0.0, 10.0)]
    assert slice_events(events, start=10.0) == []
    assert slice_events(events, start=99.0, end=200.0) == []


def test_slice_events_drops_zero_width_results():
    events = [_window("sm0", "busy", 0.0, 10.0)]
    # window touches the range boundary only: nothing to show
    assert slice_events(events, start=10.0, end=20.0) == []


def test_slice_events_sorts_output():
    events = [
        _window("z", "busy", 5.0, 6.0),
        _window("a", "busy", 0.0, 1.0),
        _window("a", "busy", 5.0, 6.0),
    ]
    sliced = slice_events(events)
    keys = [(e["start"], e["end"], e["component"], e["kind"]) for e in sliced]
    assert keys == sorted(keys)


def test_slice_events_rejects_bad_ranges():
    with pytest.raises(ValueError):
        slice_events([], start=-1.0)
    with pytest.raises(ValueError):
        slice_events([], start=10.0, end=10.0)
    with pytest.raises(ValueError):
        slice_events([], start=10.0, end=5.0)


# ----------------------------------------------------------------------
# downsampling
# ----------------------------------------------------------------------


def test_downsample_noop_when_under_budget():
    events = [
        _window("sm0", "busy", 0.0, 1.0),
        _window("sm0", "busy", 2.0, 3.0),
    ]
    assert downsample_events(events, 2) == slice_events(events)


def test_downsample_merges_smallest_gap_first():
    events = [
        _window("sm0", "busy", 0.0, 1.0),
        _window("sm0", "busy", 1.5, 2.0),   # gap of 0.5 to previous
        _window("sm0", "busy", 10.0, 11.0),  # gap of 8.0
    ]
    merged = downsample_events(events, 2)
    spans = [(e["start"], e["end"]) for e in merged]
    assert spans == [(0.0, 2.0), (10.0, 11.0)]
    # down to one window: everything merges into the envelope
    merged = downsample_events(events, 1)
    assert [(e["start"], e["end"]) for e in merged] == [(0.0, 11.0)]


def test_downsample_tie_breaks_on_earlier_gap():
    events = [
        _window("sm0", "busy", 0.0, 1.0),
        _window("sm0", "busy", 2.0, 3.0),  # gap 1.0
        _window("sm0", "busy", 4.0, 5.0),  # gap 1.0 (tie; earlier wins)
    ]
    merged = downsample_events(events, 2)
    assert [(e["start"], e["end"]) for e in merged] == [(0.0, 3.0), (4.0, 5.0)]


def test_downsample_is_per_lane():
    events = [
        _window("sm0", "busy", 0.0, 1.0),
        _window("sm0", "busy", 2.0, 3.0),
        _window("sm1", "busy", 0.0, 1.0),
        _window("sm1", "busy", 2.0, 3.0),
    ]
    merged = downsample_events(events, 1)
    assert len(merged) == 2
    assert {e["component"] for e in merged} == {"sm0", "sm1"}
    assert all((e["start"], e["end"]) == (0.0, 3.0) for e in merged)


def test_downsample_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        downsample_events([], 0)
    with pytest.raises(ValueError):
        downsample_events([], -3)


def test_downsample_fixture_keeps_lanes_and_bounds():
    data = load_zperf(ZPERF_FIXTURE)
    before = build_lanes(data["events"])
    after_events = downsample_events(data["events"], 3)
    after = build_lanes(after_events)
    assert {lane.label for lane in after} == {lane.label for lane in before}
    assert all(len(lane.windows) <= 3 for lane in after)
    for lane in after:
        starts = [start for start, _ in lane.windows]
        assert starts == sorted(starts)


# ----------------------------------------------------------------------
# prediction flattening (the live service's trace capture)
# ----------------------------------------------------------------------


def _fake_group(index, cycles, events, deltas):
    record = SimpleNamespace(events=events, deltas=lambda: deltas)
    stats = SimpleNamespace(telemetry=record, cycles=cycles)
    return SimpleNamespace(index=index, stats=stats)


def test_prediction_events_prefixes_groups_and_takes_slowest_clock():
    groups = [
        _fake_group(
            0, 100.0,
            [SimpleNamespace(component="sm0", kind="busy", start=0.0, end=50.0)],
            [],
        ),
        _fake_group(
            2, 250.0,
            [SimpleNamespace(component="sm0", kind="busy", start=10.0, end=60.0)],
            [],
        ),
    ]
    events, total = prediction_events(SimpleNamespace(groups=groups))
    assert total == 250.0
    assert [e["component"] for e in events] == ["g0.sm0", "g2.sm0"]
    keys = [(e["start"], e["end"], e["component"], e["kind"]) for e in events]
    assert keys == sorted(keys)


def test_prediction_events_skips_groups_without_telemetry():
    silent = SimpleNamespace(
        index=1, stats=SimpleNamespace(telemetry=None, cycles=999.0)
    )
    events, total = prediction_events(SimpleNamespace(groups=[silent]))
    assert events == []
    assert total == 0.0


def test_prediction_deltas_sums_groups_elementwise():
    groups = [
        _fake_group(0, 10.0, [], [{"core.instructions": 5}, {"core.instructions": 1}]),
        _fake_group(1, 20.0, [], [{"core.instructions": 7}]),
    ]
    rows = prediction_deltas(SimpleNamespace(groups=groups))
    # row 0 sums both groups; row 1 covers only the longer-running group
    assert rows == [{"core.instructions": 12}, {"core.instructions": 1}]
