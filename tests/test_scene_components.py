"""Tests for materials, camera, lights, the scene container and library."""

import numpy as np
import pytest

from repro.scene import (
    Camera,
    DirectionalLight,
    MaterialTable,
    PointLight,
    REPRESENTATIVE_SUBSET,
    SCENE_NAMES,
    Scene,
    TUNING_SCENES,
    build_scene,
    diffuse,
    emissive,
    make_scene,
    mirror,
)
from repro.scene.meshes import ground_plane
from repro.scene.scene import AddressMap
from repro.scene.vecmath import length, vec3


class TestMaterials:
    def test_default_slot_zero(self):
        table = MaterialTable()
        assert len(table) == 1
        assert not table[0].is_emissive()

    def test_add_returns_increasing_ids(self):
        table = MaterialTable()
        a = table.add(diffuse(1, 0, 0))
        b = table.add(mirror())
        assert (a, b) == (1, 2)
        assert table[b].reflectivity == 1.0

    def test_mirror_validates_reflectivity(self):
        with pytest.raises(ValueError):
            mirror(1.5)

    def test_emissive_flag(self):
        assert emissive(2, 2, 2).is_emissive()
        assert not diffuse(0.5, 0.5, 0.5).is_emissive()


class TestCamera:
    def make(self):
        return Camera(
            position=vec3(0, 0, 5), look_at=vec3(0, 0, 0), fov_degrees=90.0
        )

    def test_center_ray_points_at_target(self):
        cam = self.make()
        # Pixel (50, 50) with zero jitter sits exactly on the plane centre.
        ray = cam.primary_ray(50, 50, 100, 100, jitter=(0.0, 0.0))
        assert np.allclose(ray.direction, [0, 0, -1], atol=1e-6)

    def test_rays_are_unit_length(self):
        cam = self.make()
        for px, py in [(0, 0), (99, 0), (0, 99), (99, 99), (37, 61)]:
            assert length(cam.primary_ray(px, py, 100, 100).direction) == pytest.approx(1.0)

    def test_top_left_points_up_left(self):
        cam = self.make()
        ray = cam.primary_ray(0, 0, 100, 100, jitter=(0.0, 0.0))
        assert ray.direction[0] < 0  # left
        assert ray.direction[1] > 0  # up (py=0 is the top row)

    def test_out_of_plane_pixel_rejected(self):
        with pytest.raises(ValueError):
            self.make().primary_ray(100, 0, 100, 100)

    def test_jitter_moves_the_ray(self):
        cam = self.make()
        a = cam.primary_ray(10, 10, 100, 100, jitter=(0.1, 0.1))
        b = cam.primary_ray(10, 10, 100, 100, jitter=(0.9, 0.9))
        assert not np.allclose(a.direction, b.direction)


class TestLights:
    def test_point_light_shadow_ray_targets_light(self):
        light = PointLight(position=vec3(0, 10, 0))
        ray, distance = light.shadow_ray(vec3(0, 0, 0))
        assert np.allclose(ray.direction, [0, 1, 0])
        assert distance == pytest.approx(10.0)
        assert ray.t_max < distance  # stops short of the light

    def test_point_light_inverse_square(self):
        light = PointLight(position=vec3(0, 0, 0), intensity=vec3(4, 4, 4))
        near = light.irradiance_at(1.0)
        far = light.irradiance_at(2.0)
        assert np.allclose(near / far, [4, 4, 4])

    def test_directional_light_infinite_range(self):
        light = DirectionalLight(direction=vec3(0, -1, 0))
        ray, distance = light.shadow_ray(vec3(0, 0, 0))
        assert np.allclose(ray.direction, [0, 1, 0])
        assert distance == float("inf")
        assert np.allclose(light.irradiance_at(5.0), light.irradiance_at(500.0))


class TestAddressMap:
    def test_regions_disjoint(self):
        amap = AddressMap()
        node_hi = amap.node_address(10**6)
        assert node_hi < amap.triangle_base
        tri_hi = amap.triangle_address(10**6)
        assert tri_hi < amap.framebuffer_base

    def test_node_addresses_strided(self):
        amap = AddressMap()
        assert amap.node_address(1) - amap.node_address(0) == amap.node_size

    def test_pixel_addresses_row_major(self):
        amap = AddressMap()
        a = amap.pixel_address(0, 0, 64)
        b = amap.pixel_address(1, 0, 64)
        c = amap.pixel_address(0, 1, 64)
        assert b - a == amap.pixel_size
        assert c - a == 64 * amap.pixel_size


class TestSceneContainer:
    def test_empty_scene_rejected(self):
        cam = Camera(position=vec3(0, 0, 1), look_at=vec3(0, 0, 0))
        with pytest.raises(ValueError):
            Scene([], cam)

    def test_scene_builds_bvh_and_describes(self):
        cam = Camera(position=vec3(0, 1, 3), look_at=vec3(0, 0, 0))
        scene = Scene(ground_plane(2.0), cam, name="plane")
        assert scene.triangle_count() == 2
        assert "plane" in scene.describe()

    def test_material_of_uses_triangle_ids(self):
        cam = Camera(position=vec3(0, 1, 3), look_at=vec3(0, 0, 0))
        table = MaterialTable()
        red = table.add(diffuse(1, 0, 0))
        scene = Scene(ground_plane(2.0, material_id=red), cam, materials=table)
        assert np.allclose(scene.material_of(0).albedo, [1, 0, 0])


class TestLibrary:
    def test_all_scenes_build(self):
        for name in SCENE_NAMES:
            scene = make_scene(name)
            assert scene.triangle_count() > 0
            assert scene.name == name

    def test_unknown_scene_rejected(self):
        with pytest.raises(ValueError):
            build_scene("NOPE")

    def test_subsets_are_subsets(self):
        assert set(REPRESENTATIVE_SUBSET) <= set(SCENE_NAMES)
        assert set(TUNING_SCENES) <= set(SCENE_NAMES)

    def test_make_scene_caches(self):
        assert make_scene("SPRNG") is make_scene("SPRNG")

    def test_build_scene_fresh_instances(self):
        assert build_scene("SPRNG") is not build_scene("SPRNG")

    def test_sprng_is_tiny_park_is_big(self):
        # The library's saturation story: SPRNG barely stresses the GPU,
        # PARK is the hardest workload.
        assert make_scene("SPRNG").triangle_count() < make_scene("PARK").triangle_count()

    def test_scenes_deterministic(self):
        a, b = build_scene("CHSNT"), build_scene("CHSNT")
        assert a.triangle_count() == b.triangle_count()
        assert np.allclose(a.triangles[5].v0, b.triangles[5].v0)
