"""End-to-end tests of the Zatel pipeline (the seven steps of Fig. 3)."""

import pytest

from repro.core import Zatel, ZatelConfig
from repro.gpu import MOBILE_SOC, METRICS


@pytest.fixture(scope="module")
def result(small_scene, small_frame):
    return Zatel(MOBILE_SOC).predict(small_scene, small_frame)


class TestZatelConfig:
    def test_defaults_are_paper_tuning(self):
        cfg = ZatelConfig()
        assert cfg.division == "fine"
        assert cfg.distribution == "uniform"
        assert (cfg.block_width, cfg.block_height) == (32, 2)
        assert cfg.extrapolation == "linear"
        assert (cfg.min_fraction, cfg.max_fraction) == (0.3, 0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZatelConfig(division="random")
        with pytest.raises(ValueError):
            ZatelConfig(extrapolation="quadratic")
        with pytest.raises(ValueError):
            ZatelConfig(fraction_override=0.0)


class TestPipelineStructure:
    def test_group_count_equals_downscale_factor(self, result):
        assert result.downscale_factor == 4  # gcd(8, 4) for Mobile SoC
        assert len(result.groups) == 4

    def test_groups_partition_the_plane(self, result, small_settings):
        total = sum(g.pixel_count for g in result.groups)
        assert total == small_settings.pixel_count()

    def test_fractions_respect_bounds(self, result):
        for group in result.groups:
            assert 0.3 <= group.fraction <= 0.6

    def test_selected_counts_match_fractions(self, result):
        for group in result.groups:
            target = group.fraction * group.pixel_count
            assert abs(group.selected_count - target) <= 64  # one block

    def test_group_sims_filter_the_rest(self, result):
        for group in result.groups:
            assert (
                group.stats.pixels_traced + group.stats.pixels_filtered
                == group.pixel_count
            )
            assert group.stats.pixels_traced == group.selected_count

    def test_scaled_gpu_name_recorded(self, result):
        assert "K4" in result.scaled_gpu_name
        assert result.gpu_name == "MobileSoC"

    def test_metrics_complete(self, result):
        from repro.gpu import EXTENDED_METRICS

        assert set(result.metrics) == set(METRICS) | set(EXTENDED_METRICS)
        assert all(v >= 0 for v in result.metrics.values())


class TestPredictionQuality:
    def test_cycles_within_factor_two(self, result, small_full_stats):
        predicted = result.metrics["cycles"]
        actual = small_full_stats.cycles
        assert 0.5 * actual < predicted < 2.0 * actual

    def test_speedup_greater_than_one(self, result, small_full_stats):
        assert result.speedup_vs(small_full_stats) > 1.0
        # Serial accounting is necessarily slower than parallel.
        assert result.speedup_vs(small_full_stats, parallel=False) < result.speedup_vs(
            small_full_stats
        )

    def test_work_accounting(self, result):
        assert result.max_group_work_units <= result.total_work_units
        assert result.total_work_units == sum(g.work_units for g in result.groups)

    def test_deterministic(self, small_scene, small_frame, result):
        again = Zatel(MOBILE_SOC).predict(small_scene, small_frame)
        assert again.metrics == result.metrics


class TestVariants:
    def test_coarse_division(self, small_scene, small_frame):
        config = ZatelConfig(division="coarse")
        result = Zatel(MOBILE_SOC, config).predict(small_scene, small_frame)
        assert len(result.groups) == 4
        assert result.metrics["cycles"] > 0

    def test_fraction_override(self, small_scene, small_frame):
        config = ZatelConfig(fraction_override=0.5)
        result = Zatel(MOBILE_SOC, config).predict(small_scene, small_frame)
        for group in result.groups:
            assert group.fraction == 0.5

    def test_explicit_downscale_factor(self, small_scene, small_frame):
        config = ZatelConfig(downscale_factor=2)
        result = Zatel(MOBILE_SOC, config).predict(small_scene, small_frame)
        assert result.downscale_factor == 2
        assert len(result.groups) == 2

    def test_temperature_distribution(self, small_scene, small_frame):
        config = ZatelConfig(distribution="exptmp")
        result = Zatel(MOBILE_SOC, config).predict(small_scene, small_frame)
        assert result.metrics["cycles"] > 0

    def test_regression_extrapolation(self, small_scene, small_frame):
        config = ZatelConfig(extrapolation="regression")
        result = Zatel(MOBILE_SOC, config).predict(small_scene, small_frame)
        # Each group simulated at the three regression fractions; the
        # recorded fraction is the largest of them.
        for group in result.groups:
            assert group.fraction == max(config.regression_fractions)
        assert all(v == v for v in result.metrics.values())  # no NaN
        assert result.metrics["cycles"] > 0

    def test_mean_fraction(self, result):
        assert 0.3 <= result.mean_fraction() <= 0.6

    def test_parallel_workers_match_serial(self, small_scene, small_frame, result):
        # The paper deploys the K instances on separate CPU cores; the
        # forked-pool path must be bit-identical to the serial path.
        parallel = Zatel(MOBILE_SOC).predict(small_scene, small_frame, workers=2)
        assert parallel.metrics == result.metrics
        assert [g.selected_count for g in parallel.groups] == [
            g.selected_count for g in result.groups
        ]
