"""Tests for GPU config-file (INI) loading/saving."""

import dataclasses
from pathlib import Path

import pytest

from repro.gpu import (
    MOBILE_SOC,
    RTX_2060,
    GPUConfig,
    load_config,
    resolve_gpu,
    save_config,
)

REPO_CONFIGS = Path(__file__).resolve().parents[1] / "configs"


class TestRoundtrip:
    @pytest.mark.parametrize("config", [MOBILE_SOC, RTX_2060])
    def test_presets_roundtrip(self, config, tmp_path):
        path = save_config(config, tmp_path / "gpu.ini")
        assert load_config(path) == config

    def test_variant_fields_roundtrip(self, tmp_path):
        variant = dataclasses.replace(
            MOBILE_SOC,
            name="custom",
            warp_scheduler="lrr",
            rt_prefetch_depth=8,
            rt_max_warps=8,
        )
        loaded = load_config(save_config(variant, tmp_path / "v.ini"))
        assert loaded == variant
        assert loaded.warp_scheduler == "lrr"

    def test_shipped_configs_match_presets(self):
        assert load_config(REPO_CONFIGS / "mobile_soc.ini") == MOBILE_SOC
        assert load_config(REPO_CONFIGS / "rtx2060.ini") == RTX_2060


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_config(tmp_path / "nope.ini")

    def test_missing_gpu_section(self, tmp_path):
        path = tmp_path / "bad.ini"
        path.write_text("[l1d]\nsize_bytes = 1024\n")
        with pytest.raises(ValueError, match="missing"):
            load_config(path)

    def test_unknown_key_rejected(self, tmp_path):
        path = save_config(MOBILE_SOC, tmp_path / "g.ini")
        text = path.read_text().replace("[gpu]", "[gpu]\nturbo_mode = 9", 1)
        path.write_text(text)
        with pytest.raises(ValueError, match="unknown"):
            load_config(path)

    def test_invalid_values_rejected_by_validators(self, tmp_path):
        path = save_config(MOBILE_SOC, tmp_path / "g.ini")
        text = path.read_text().replace("num_sms = 8", "num_sms = 0")
        path.write_text(text)
        with pytest.raises(ValueError):
            load_config(path)

    def test_unknown_section_named_in_error(self, tmp_path):
        path = save_config(MOBILE_SOC, tmp_path / "g.ini")
        path.write_text(path.read_text() + "\n[turbo]\nboost = 2\n")
        with pytest.raises(ValueError, match=r"unknown section \[turbo\]") as exc:
            load_config(path)
        assert str(path) in str(exc.value)
        assert "[gpu]" in str(exc.value)  # tells the user what is allowed

    def test_non_numeric_gpu_value_names_file_section_key(self, tmp_path):
        path = save_config(MOBILE_SOC, tmp_path / "g.ini")
        path.write_text(path.read_text().replace("num_sms = 8", "num_sms = fast"))
        with pytest.raises(ValueError, match="must be an integer") as exc:
            load_config(path)
        message = str(exc.value)
        assert str(path) in message
        assert "[gpu]" in message and "num_sms" in message and "fast" in message

    def test_non_numeric_cache_value_names_file_section_key(self, tmp_path):
        path = save_config(MOBILE_SOC, tmp_path / "g.ini")
        text = path.read_text()
        # Only [l1d] carries latency = 4 exactly once in the mobile preset's
        # serialized order; target it via the section header.
        head, _, l1d_tail = text.partition("[l1d]")
        path.write_text(head + "[l1d]" + l1d_tail.replace(
            "size_bytes = ", "size_bytes = big", 1
        ))
        with pytest.raises(ValueError, match="must be an integer") as exc:
            load_config(path)
        message = str(exc.value)
        assert "[l1d]" in message and "size_bytes" in message

    def test_missing_cache_key_named_in_error(self, tmp_path):
        path = tmp_path / "partial.ini"
        path.write_text(
            "[gpu]\nname = mini\n[l1d]\nsize_bytes = 1024\nline_bytes = 32\n"
        )
        with pytest.raises(ValueError, match="missing required key") as exc:
            load_config(path)
        message = str(exc.value)
        assert "'associativity'" in message and "'latency'" in message

    def test_malformed_ini_is_one_line_error(self, tmp_path):
        path = tmp_path / "broken.ini"
        path.write_text("num_sms = 8\n")  # key before any section header
        with pytest.raises(ValueError, match="malformed INI") as exc:
            load_config(path)
        assert "\n" not in str(exc.value)
        assert str(path) in str(exc.value)

    def test_missing_cache_sections_use_defaults(self, tmp_path):
        path = tmp_path / "minimal.ini"
        path.write_text(
            "[gpu]\nname = mini\nnum_sms = 4\nnum_mem_partitions = 2\n"
            "registers_per_sm = 32768\nmax_warps_per_sm = 16\n"
        )
        config = load_config(path)
        assert config.num_sms == 4
        assert config.l1d == GPUConfig.__dataclass_fields__["l1d"].default_factory()


class TestResolve:
    def test_resolves_preset_names(self):
        assert resolve_gpu("mobile") is MOBILE_SOC
        assert resolve_gpu("rtx2060") is RTX_2060

    def test_resolves_ini_paths(self):
        config = resolve_gpu(str(REPO_CONFIGS / "rtx2060.ini"))
        assert config == RTX_2060

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            resolve_gpu("h100")
