"""Tests for trace structures, the PTX model and the functional tracer."""

import numpy as np
import pytest

from repro.scene import Camera, MaterialTable, PointLight, Scene, diffuse, mirror
from repro.scene.meshes import ground_plane, icosphere
from repro.scene.vecmath import vec3
from repro.tracer import (
    FILTER_EXIT_INSTRUCTIONS,
    FunctionalTracer,
    InstructionClass,
    PTXInstruction,
    PixelTrace,
    RaySegment,
    RenderSettings,
    SegmentKind,
    inject_filter_shader,
    raygen_shader,
    trace_frame,
)


class TestTraceStructures:
    def make_trace(self):
        return PixelTrace(
            px=1,
            py=2,
            segments=[
                RaySegment(SegmentKind.PRIMARY, [0, 1, 2], [5], True, 12),
                RaySegment(SegmentKind.SHADOW, [0, 3], [], False, 5),
            ],
        )

    def test_totals(self):
        trace = self.make_trace()
        assert trace.total_nodes() == 5
        assert trace.total_tris() == 1
        assert trace.total_instructions() == 24 + 12 + 5

    def test_cost_is_positive_and_monotone_in_work(self):
        trace = self.make_trace()
        lighter = PixelTrace(px=0, py=0, segments=trace.segments[:1])
        assert trace.cost() > lighter.cost() > 0


class TestPTX:
    def test_raygen_instruction_count(self):
        shader = raygen_shader(setup_instructions=20)
        assert shader.instruction_count(InstructionClass.TRACE) == 1
        assert shader.instruction_count(InstructionClass.STORE) == 1
        assert shader.instruction_count() > 20

    def test_filter_injection_prepends_two_instructions(self):
        shader = raygen_shader()
        injected = inject_filter_shader(shader)
        assert injected.instructions[0].opcode == "filter_shader"
        assert (
            injected.instruction_count()
            == shader.instruction_count() + FILTER_EXIT_INSTRUCTIONS
        )
        # The original is untouched (prepend is pure).
        assert shader.instructions[0].opcode != "filter_shader"

    def test_instruction_repeat_validated(self):
        with pytest.raises(ValueError):
            PTXInstruction("nop", InstructionClass.ALU, repeat=0)


@pytest.fixture(scope="module")
def lit_scene():
    materials = MaterialTable()
    red = materials.add(diffuse(0.9, 0.1, 0.1))
    shiny = materials.add(mirror(1.0))
    tris = ground_plane(4.0)
    tris += icosphere(vec3(0, 1, 0), 0.8, subdivisions=1, material_id=red)
    tris += icosphere(vec3(1.8, 0.5, 0), 0.5, subdivisions=1, material_id=shiny)
    camera = Camera(position=vec3(0, 1.2, 4), look_at=vec3(0, 0.8, 0))
    return Scene(
        tris, camera, [PointLight(position=vec3(0, 6, 2))], materials,
        name="lit", max_bounces=2,
    )


class TestRenderSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            RenderSettings(width=0, height=8)
        with pytest.raises(ValueError):
            RenderSettings(width=8, height=8, samples_per_pixel=0)

    def test_all_pixels_row_major(self):
        settings = RenderSettings(width=3, height=2)
        assert list(settings.all_pixels()) == [
            (0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1),
        ]
        assert settings.pixel_count() == 6

    def test_all_pixels_cached(self):
        settings = RenderSettings(width=3, height=2)
        # The plane is immutable and cached: repeated calls return the
        # same tuple instead of materializing a fresh list.
        assert settings.all_pixels() is settings.all_pixels()
        assert isinstance(settings.all_pixels(), tuple)


class TestFunctionalTracer:
    def test_deterministic(self, lit_scene):
        settings = RenderSettings(width=8, height=8, seed=3)
        a = FunctionalTracer(lit_scene, settings).trace_pixel(4, 4)[0]
        b = FunctionalTracer(lit_scene, settings).trace_pixel(4, 4)[0]
        assert a.total_nodes() == b.total_nodes()
        assert [s.kind for s in a.segments] == [s.kind for s in b.segments]

    def test_primary_segment_first(self, lit_scene):
        settings = RenderSettings(width=8, height=8)
        trace, _ = FunctionalTracer(lit_scene, settings).trace_pixel(4, 4)
        assert trace.segments[0].kind is SegmentKind.PRIMARY
        assert trace.segments[0].nodes  # traversal visited the root at least

    def test_hit_spawns_shadow_segment(self, lit_scene):
        settings = RenderSettings(width=8, height=8)
        trace, _ = FunctionalTracer(lit_scene, settings).trace_pixel(4, 5)
        kinds = [s.kind for s in trace.segments]
        if trace.segments[0].hit:
            assert SegmentKind.SHADOW in kinds

    def test_miss_costs_less_than_hit(self, lit_scene):
        settings = RenderSettings(width=16, height=16)
        tracer = FunctionalTracer(lit_scene, settings)
        sky, _ = tracer.trace_pixel(8, 0)      # top row: sky
        center, _ = tracer.trace_pixel(8, 10)  # sphere
        assert sky.cost() < center.cost()

    def test_trace_frame_covers_requested_pixels(self, lit_scene):
        settings = RenderSettings(width=8, height=8)
        subset = [(0, 0), (3, 3), (7, 7)]
        frame = trace_frame(lit_scene, settings, pixels=subset)
        assert set(frame.pixels) == set(subset)
        full = trace_frame(lit_scene, settings)
        assert len(full.pixels) == 64

    def test_spp_multiplies_segments(self, lit_scene):
        one = trace_frame(lit_scene, RenderSettings(width=4, height=4))
        two = trace_frame(
            lit_scene, RenderSettings(width=4, height=4, samples_per_pixel=2)
        )
        assert two.get(2, 2).total_nodes() > one.get(2, 2).total_nodes()

    def test_cost_map_shape_and_positivity(self, lit_scene):
        frame = trace_frame(lit_scene, RenderSettings(width=8, height=6))
        cm = frame.cost_map()
        assert cm.shape == (6, 8)
        assert (cm > 0).all()

    def test_render_image_in_unit_range(self, lit_scene):
        settings = RenderSettings(width=8, height=8)
        image = FunctionalTracer(lit_scene, settings).render_image()
        assert image.shape == (8, 8, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_mirror_scene_creates_reflection_segments(self, lit_scene):
        frame = trace_frame(lit_scene, RenderSettings(width=24, height=24))
        kinds = {
            s.kind for t in frame.pixels.values() for s in t.segments
        }
        assert SegmentKind.REFLECTION in kinds

    def test_max_bounces_bounds_segments(self, lit_scene):
        frame = trace_frame(lit_scene, RenderSettings(width=16, height=16))
        lights = len(lit_scene.lights)
        per_sample_cap = (lit_scene.max_bounces + 1) * (1 + lights)
        for trace in frame.pixels.values():
            assert len(trace.segments) <= per_sample_cap
