"""Tests for the adaptive sample-complexity extension."""

import pytest

from repro.core import AdaptiveConfig, AdaptiveZatel, Zatel
from repro.gpu import MOBILE_SOC, METRICS


class TestAdaptiveConfig:
    def test_defaults_valid(self):
        cfg = AdaptiveConfig()
        assert 0 < cfg.pilot_fraction < cfg.max_fraction <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(pilot_fraction=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(growth=1.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(tolerance=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(pilot_fraction=0.5, max_fraction=0.3)


class TestAdaptiveZatel:
    @pytest.fixture(scope="class")
    def result(self, small_scene, small_frame):
        return AdaptiveZatel(MOBILE_SOC).predict(small_scene, small_frame)

    def test_produces_complete_metrics(self, result):
        from repro.gpu import EXTENDED_METRICS

        assert set(result.metrics) == set(METRICS) | set(EXTENDED_METRICS)
        assert result.metrics["cycles"] > 0

    def test_fractions_within_controller_bounds(self, result):
        controller = AdaptiveConfig()
        for group in result.groups:
            assert (
                controller.pilot_fraction
                <= group.fraction
                <= controller.max_fraction
            )

    def test_work_charges_all_attempts(self, small_scene, small_frame, result):
        from repro.core import ZatelConfig

        # Each group ran at least the pilot; any escalation adds work, so
        # the total is at least what a single-shot pilot run would cost.
        single = Zatel(
            MOBILE_SOC,
            ZatelConfig(fraction_override=AdaptiveConfig().pilot_fraction),
        ).predict(small_scene, small_frame)
        assert result.total_work_units >= single.total_work_units

    def test_deterministic(self, small_scene, small_frame, result):
        again = AdaptiveZatel(MOBILE_SOC).predict(small_scene, small_frame)
        assert again.metrics == result.metrics
        assert [g.fraction for g in again.groups] == [
            g.fraction for g in result.groups
        ]

    def test_tight_tolerance_escalates_more(self, small_scene, small_frame):
        loose = AdaptiveZatel(
            MOBILE_SOC, adaptive=AdaptiveConfig(tolerance=5.0)
        ).predict(small_scene, small_frame)
        tight = AdaptiveZatel(
            MOBILE_SOC, adaptive=AdaptiveConfig(tolerance=0.0001)
        ).predict(small_scene, small_frame)
        # An effectively-infinite tolerance converges at the second rung;
        # a near-zero one escalates to the cap.
        assert tight.total_work_units > loose.total_work_units
        assert max(g.fraction for g in tight.groups) == pytest.approx(
            AdaptiveConfig().max_fraction
        )
