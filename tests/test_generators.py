"""Tests for the parameterized workload generators."""

import subprocess
import sys

import pytest

from repro.scene.generators import clutter_scene, saturation_scene
from repro.tracer import FunctionalTracer, RenderSettings


class TestSaturationScene:
    def test_validation(self):
        with pytest.raises(ValueError):
            saturation_scene(-0.1)
        with pytest.raises(ValueError):
            saturation_scene(1.5)

    def test_level_scales_geometry(self):
        low = saturation_scene(0.0, seed=1)
        high = saturation_scene(1.0, seed=1)
        assert high.triangle_count() > 5 * low.triangle_count()

    def test_level_scales_path_depth(self):
        assert saturation_scene(0.0).max_bounces == 1
        assert saturation_scene(1.0).max_bounces == 4

    def test_level_scales_workload_cost(self):
        settings = RenderSettings(width=16, height=16)
        low = FunctionalTracer(saturation_scene(0.0, seed=2), settings)
        high = FunctionalTracer(saturation_scene(0.8, seed=2), settings)
        assert (
            high.trace_frame().total_cost() > 2 * low.trace_frame().total_cost()
        )

    def test_deterministic_per_seed(self):
        a = saturation_scene(0.5, seed=4)
        b = saturation_scene(0.5, seed=4)
        assert a.triangle_count() == b.triangle_count()

    def test_names_encode_level(self):
        assert saturation_scene(0.25).name == "SAT025"
        assert saturation_scene(1.0).name == "SAT100"


def _scene_digest(level: float, seed: int) -> str:
    """Geometry digest of a saturation scene, stable across processes."""
    import hashlib

    scene = saturation_scene(level, seed=seed)
    hasher = hashlib.sha256()
    hasher.update(f"{scene.name}|{scene.max_bounces}|".encode())
    for triangle in scene.triangles:
        for vertex in (triangle.v0, triangle.v1, triangle.v2):
            hasher.update(
                ",".join(f"{float(c):.12e}" for c in vertex).encode()
            )
        hasher.update(str(triangle.material_id).encode())
    return hasher.hexdigest()


_DIGEST_SNIPPET = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {tests!r})
from test_generators import _scene_digest
print(_scene_digest({level!r}, {seed!r}))
"""


class TestSaturationDeterminism:
    """The generator boundary levels reproduce bit-identically anywhere.

    Campaign fingerprints assume a recipe spec rebuilds the same scene
    in any process (fleet workers rebuild from specs alone), so the
    geometry at the knob extremes must not depend on interpreter state,
    hash randomization, or set/dict iteration order.
    """

    @pytest.mark.parametrize("level", [0.0, 1.0])
    def test_boundary_levels_deterministic_across_processes(self, level):
        import os
        from pathlib import Path

        tests_dir = str(Path(__file__).resolve().parent)
        src_dir = str(Path(__file__).resolve().parents[1] / "src")
        digests = set()
        for run in range(2):
            # Different hash seeds per process: a digest that held only
            # under one PYTHONHASHSEED would pass a plain rerun.
            env = dict(os.environ, PYTHONHASHSEED=str(run + 1))
            out = subprocess.run(
                [
                    sys.executable,
                    "-c",
                    _DIGEST_SNIPPET.format(
                        src=src_dir, tests=tests_dir, level=level, seed=9
                    ),
                ],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1
        assert digests == {_scene_digest(level, 9)}


class TestKnobInterpolation:
    def test_monotone_in_t_for_every_knob(self):
        from repro.scene.animation import interpolate_knobs

        start = {"level": 0.1, "extra": 5.0}
        end = {"level": 0.9, "extra": 1.0}
        steps = [i / 10 for i in range(11)]
        series = [interpolate_knobs(start, end, t) for t in steps]
        levels = [s["level"] for s in series]
        extras = [s["extra"] for s in series]
        # level rises toward 0.9; extra falls toward 1.0 — each strictly
        # monotone because every value is a convex combination.
        assert levels == sorted(levels)
        assert extras == sorted(extras, reverse=True)
        assert series[0] == start
        assert series[-1] == end

    def test_knobs_absent_from_end_hold_steady(self):
        from repro.scene.animation import interpolate_knobs

        mid = interpolate_knobs({"level": 0.4, "other": 2.0}, {"level": 0.8}, 0.5)
        assert mid == {"level": 0.6000000000000001, "other": 2.0}


class TestRecipeKnobValidation:
    def test_out_of_range_error_names_knob_and_range(self):
        from repro.scene.registry import validate_recipe_knobs

        with pytest.raises(ValueError) as excinfo:
            validate_recipe_knobs("saturation", {"level": 2.0})
        message = str(excinfo.value)
        assert "'level'" in message
        assert "[0, 1]" in message
        assert "2" in message

    def test_unknown_knob_error_lists_known_knobs(self):
        from repro.scene.registry import validate_recipe_knobs

        with pytest.raises(ValueError) as excinfo:
            validate_recipe_knobs("clutter", {"triangle_target": 100})
        message = str(excinfo.value)
        assert "'triangle_target'" in message
        assert "reflective_share" in message and "triangles_target" in message

    def test_defaults_fill_and_integer_knobs_round(self):
        from repro.scene.registry import validate_recipe_knobs

        resolved = validate_recipe_knobs(
            "clutter", {"triangles_target": 1500.6}
        )
        assert resolved["triangles_target"] == 1501.0
        assert resolved["reflective_share"] == 0.2


class TestClutterScene:
    def test_validation(self):
        with pytest.raises(ValueError):
            clutter_scene(0)
        with pytest.raises(ValueError):
            clutter_scene(1000, reflective_share=2.0)

    def test_triangle_count_near_target(self):
        for target in (1000, 4000, 8000):
            scene = clutter_scene(target, seed=5)
            assert 0.5 * target <= scene.triangle_count() <= 1.6 * target

    def test_reflective_share_adds_mirrors(self):
        shiny = clutter_scene(3000, seed=6, reflective_share=1.0)
        matte = clutter_scene(3000, seed=6, reflective_share=0.0)
        # All-reflective: some triangles use a mirror material.
        assert any(
            shiny.materials[t.material_id].reflectivity > 0
            for t in shiny.triangles
        )
        # No-reflective: none do.
        assert all(
            matte.materials[t.material_id].reflectivity == 0
            for t in matte.triangles
        )

    def test_renders(self):
        scene = clutter_scene(1500, seed=7)
        settings = RenderSettings(width=8, height=8)
        frame = FunctionalTracer(scene, settings).trace_frame()
        assert frame.total_cost() > 0
