"""Tests for the parameterized workload generators."""

import pytest

from repro.scene.generators import clutter_scene, saturation_scene
from repro.tracer import FunctionalTracer, RenderSettings


class TestSaturationScene:
    def test_validation(self):
        with pytest.raises(ValueError):
            saturation_scene(-0.1)
        with pytest.raises(ValueError):
            saturation_scene(1.5)

    def test_level_scales_geometry(self):
        low = saturation_scene(0.0, seed=1)
        high = saturation_scene(1.0, seed=1)
        assert high.triangle_count() > 5 * low.triangle_count()

    def test_level_scales_path_depth(self):
        assert saturation_scene(0.0).max_bounces == 1
        assert saturation_scene(1.0).max_bounces == 4

    def test_level_scales_workload_cost(self):
        settings = RenderSettings(width=16, height=16)
        low = FunctionalTracer(saturation_scene(0.0, seed=2), settings)
        high = FunctionalTracer(saturation_scene(0.8, seed=2), settings)
        assert (
            high.trace_frame().total_cost() > 2 * low.trace_frame().total_cost()
        )

    def test_deterministic_per_seed(self):
        a = saturation_scene(0.5, seed=4)
        b = saturation_scene(0.5, seed=4)
        assert a.triangle_count() == b.triangle_count()

    def test_names_encode_level(self):
        assert saturation_scene(0.25).name == "SAT025"
        assert saturation_scene(1.0).name == "SAT100"


class TestClutterScene:
    def test_validation(self):
        with pytest.raises(ValueError):
            clutter_scene(0)
        with pytest.raises(ValueError):
            clutter_scene(1000, reflective_share=2.0)

    def test_triangle_count_near_target(self):
        for target in (1000, 4000, 8000):
            scene = clutter_scene(target, seed=5)
            assert 0.5 * target <= scene.triangle_count() <= 1.6 * target

    def test_reflective_share_adds_mirrors(self):
        shiny = clutter_scene(3000, seed=6, reflective_share=1.0)
        matte = clutter_scene(3000, seed=6, reflective_share=0.0)
        # All-reflective: some triangles use a mirror material.
        assert any(
            shiny.materials[t.material_id].reflectivity > 0
            for t in shiny.triangles
        )
        # No-reflective: none do.
        assert all(
            matte.materials[t.material_id].reflectivity == 0
            for t in matte.triangles
        )

    def test_renders(self):
        scene = clutter_scene(1500, seed=7)
        settings = RenderSettings(width=8, height=8)
        frame = FunctionalTracer(scene, settings).trace_frame()
        assert frame.total_cost() > 0
