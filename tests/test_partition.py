"""Tests for image-plane division (step 4): coverage, disjointness, shape."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    coarse_partition,
    fine_partition,
    partition_plane,
    tile_grid_shape,
)


def assert_exact_cover(groups, width, height):
    """Every pixel in exactly one group."""
    seen = set()
    for group in groups:
        for pixel in group:
            assert pixel not in seen, f"pixel {pixel} in two groups"
            seen.add(pixel)
    assert len(seen) == width * height


class TestTileGrid:
    def test_paper_example_k6(self):
        # Fig. 5 splits a square-ish plane into 3 rows x 2 columns... the
        # chooser prefers near-square tiles; for a square plane and K=6
        # both 2x3 and 3x2 are equally good — accept either orientation.
        rows, cols = tile_grid_shape(6, 512, 512)
        assert rows * cols == 6
        assert {rows, cols} == {2, 3}

    def test_k4_square(self):
        assert tile_grid_shape(4, 512, 512) == (2, 2)

    def test_prime_k_on_wide_plane(self):
        rows, cols = tile_grid_shape(5, 1000, 100)
        assert rows * cols == 5
        assert cols >= rows  # wide plane: more columns

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            tile_grid_shape(0, 64, 64)


class TestCoarse:
    def test_exact_cover(self):
        assert_exact_cover(coarse_partition(64, 32, 4), 64, 32)

    def test_group_count(self):
        assert len(coarse_partition(64, 64, 6)) == 6

    def test_groups_are_contiguous_tiles(self):
        groups = coarse_partition(64, 64, 4)
        for group in groups:
            xs = [p[0] for p in group]
            ys = [p[1] for p in group]
            area = (max(xs) - min(xs) + 1) * (max(ys) - min(ys) + 1)
            assert area == len(group)  # a filled rectangle

    def test_near_equal_sizes(self):
        groups = coarse_partition(60, 60, 4)
        sizes = [len(g) for g in groups]
        assert max(sizes) - min(sizes) <= 60  # at most one row/col apart

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=4, max_value=50),
        st.integers(min_value=4, max_value=50),
        st.integers(min_value=1, max_value=8),
    )
    def test_property_cover(self, width, height, k):
        assert_exact_cover(coarse_partition(width, height, k), width, height)


class TestFine:
    def test_exact_cover(self):
        assert_exact_cover(fine_partition(64, 32, 4), 64, 32)

    def test_equal_sizes_when_divisible(self):
        groups = fine_partition(64, 64, 4, chunk_width=32, chunk_height=2)
        sizes = {len(g) for g in groups}
        assert sizes == {64 * 64 // 4}

    def test_round_robin_interleaves_chunks(self):
        groups = fine_partition(64, 8, 2, chunk_width=32, chunk_height=2)
        # Chunk (0,0)-(31,1) goes to group 0, chunk (32,0)-(63,1) to group 1.
        assert (0, 0) in set(groups[0])
        assert (32, 0) in set(groups[1])
        # The next chunk row rotates back to group 0.
        assert (0, 2) in set(groups[0])

    def test_each_group_samples_whole_plane(self):
        # Fine-grained groups must touch every horizontal band (Fig. 7's
        # "recognize the fox in these heatmaps" property).
        groups = fine_partition(64, 64, 4, chunk_width=32, chunk_height=2)
        for group in groups:
            rows = {p[1] // 16 for p in group}
            assert rows == {0, 1, 2, 3}

    def test_pixel_order_forms_warps(self):
        # Consecutive runs of 32 pixels share a chunk row: same y, x 0..31.
        groups = fine_partition(64, 64, 4)
        run = groups[0][:32]
        assert len({p[1] for p in run}) == 1
        assert [p[0] for p in run] == list(range(run[0][0], run[0][0] + 32))

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            fine_partition(64, 64, 4, chunk_width=0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=4, max_value=64),
        st.integers(min_value=4, max_value=64),
        st.integers(min_value=1, max_value=8),
    )
    def test_property_cover(self, width, height, k):
        assert_exact_cover(fine_partition(width, height, k), width, height)


class TestDispatcher:
    def test_selects_methods(self):
        fine = partition_plane(32, 32, 2, method="fine")
        coarse = partition_plane(32, 32, 2, method="coarse")
        assert set(fine[0]) != set(coarse[0])

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            partition_plane(32, 32, 2, method="diagonal")

    def test_k1_is_whole_plane(self):
        groups = partition_plane(16, 16, 1)
        assert len(groups) == 1 and len(groups[0]) == 256
