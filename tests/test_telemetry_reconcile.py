"""Interval-snapshot reconciliation over the full scene library.

Satellite acceptance: on every library scene, under both tracing
backends, the telemetry bus's interval snapshots must reconcile exactly
with the run's end-of-run :class:`SimulationStats` — integer counters via
the sum of per-interval deltas (which telescopes exactly), float
accumulators via the final cumulative snapshot (float delta sums do not
telescope bit-exactly, cumulative values do).
"""

import dataclasses

import pytest

from repro.gpu import MOBILE_SOC, CycleSimulator, compile_kernel
from repro.scene.library import SCENE_NAMES, make_scene
from repro.tracer.tracer import FunctionalTracer, RenderSettings

SIZE = 12
INTERVAL = 500


def _component_sum(counters, prefix, suffix):
    return sum(
        value
        for name, value in counters.items()
        if name.startswith(prefix) and name.endswith(suffix)
    )


@pytest.mark.parametrize("backend", ("scalar", "packet"))
@pytest.mark.parametrize("scene_name", SCENE_NAMES)
def test_snapshots_reconcile_with_final_stats(scene_name, backend):
    scene = make_scene(scene_name)
    frame = FunctionalTracer(
        scene,
        RenderSettings(
            width=SIZE, height=SIZE, samples_per_pixel=1, seed=0,
            tracing_backend=backend,
        ),
    ).trace_frame()
    gpu = dataclasses.replace(
        MOBILE_SOC, telemetry_interval=INTERVAL, timeline_trace=True
    )
    warps = compile_kernel(frame, list(frame.pixels), scene.addresses)
    stats = CycleSimulator(gpu, scene.addresses).run(warps)
    record = stats.telemetry
    assert record is not None

    # The trailing snapshot closes the run at the final cycle count.
    assert record.snapshots[-1].end == stats.cycles

    # Integer counters: the per-interval deltas telescope exactly back to
    # the simulator's aggregated totals.
    deltas = record.deltas()

    def delta_sum(prefix, suffix):
        return sum(_component_sum(row, prefix, suffix) for row in deltas)

    assert delta_sum("core.instructions", "") == stats.instructions
    assert (
        delta_sum("core.issued_warp_instructions", "")
        == stats.issued_warp_instructions
    )
    assert delta_sum("sm", ".l1d.accesses") == stats.l1d_accesses
    assert delta_sum("sm", ".l1d.misses") == stats.l1d_misses
    assert delta_sum("l2.", ".accesses") == stats.l2_accesses
    assert delta_sum("l2.", ".misses") == stats.l2_misses
    assert delta_sum("sm", ".traversal_steps") == stats.rt_traversal_steps
    assert delta_sum("sm", ".active_ray_steps") == stats.rt_active_ray_steps
    assert delta_sum("dram.", ".requests") == stats.dram_requests

    # Float accumulators: final cumulative snapshot equals the stats
    # bit for bit (same Python floats, captured after finalization).
    final = record.final_counters()
    assert (
        _component_sum(final, "dram.", ".data_cycles")
        == stats.dram_data_cycles
    )
    assert (
        _component_sum(final, "dram.", ".pending_cycles")
        == stats.dram_pending_cycles
    )
    assert (
        _component_sum(final, "core.", "warp_resident_cycles")
        == stats.warp_resident_cycles
    )

    # Snapshot boundaries fall on the configured grid.
    for snapshot in record.snapshots[:-1]:
        assert snapshot.end % INTERVAL == 0
    assert all(
        snapshot.start < snapshot.end or snapshot.index == 0
        for snapshot in record.snapshots
    )

    # Timeline windows are well-formed (they may outlive the last warp:
    # the RT fetch pipeline lets warps retire before their final memory
    # traffic drains through L2 and DRAM).
    for event in record.events:
        assert 0.0 <= event.start < event.end
