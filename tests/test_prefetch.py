"""Tests for the treelet-style RT-unit prefetcher (an architectural
feature in the spirit of the paper's motivating proposals)."""

import dataclasses

import pytest

from repro.gpu import MOBILE_SOC, CycleSimulator, TraceOp, compile_kernel
from repro.gpu.memory import MemorySubsystem
from repro.gpu.sm import SM
from repro.scene.scene import AddressMap


@pytest.fixture()
def sm():
    return SM(0, MOBILE_SOC, MemorySubsystem(MOBILE_SOC))


class TestPrefetchPrimitive:
    def test_cold_line_issues_fetch(self, sm):
        assert sm.prefetch(0x1000_0000, 0.0) is True

    def test_resident_line_skipped(self, sm):
        sm.mem_access(0x1000_0000, 0.0)
        assert sm.prefetch(0x1000_0000, 100.0) is False

    def test_in_flight_line_skipped(self, sm):
        sm.prefetch(0x2000_0000, 0.0)
        assert sm.prefetch(0x2000_0000, 1.0) is False

    def test_demand_merges_with_prefetch(self, sm):
        line = 0x3000_0000
        sm.prefetch(line, 0.0)
        # A demand access shortly after merges in the MSHR: its latency is
        # bounded by the prefetch's remaining time, below a fresh miss.
        merged = sm.mem_access(line, 10.0)
        fresh_sm = SM(0, MOBILE_SOC, MemorySubsystem(MOBILE_SOC))
        cold = fresh_sm.mem_access(line, 10.0)
        assert merged <= cold

    def test_prefetch_does_not_touch_demand_stats(self, sm):
        before = sm.l1d.stats.accesses
        sm.prefetch(0x4000_0000, 0.0)
        assert sm.l1d.stats.accesses == before


class TestPrefetchInTraversal:
    def run_config(self, warps, scene_addresses, depth):
        cfg = dataclasses.replace(MOBILE_SOC, rt_prefetch_depth=depth)
        return CycleSimulator(cfg, scene_addresses).run(warps)

    @pytest.fixture(scope="class")
    def warps(self, small_scene, small_settings, small_frame):
        return compile_kernel(
            small_frame, small_settings.all_pixels(), small_scene.addresses
        )

    def test_disabled_by_default(self):
        assert MOBILE_SOC.rt_prefetch_depth == 0

    def test_prefetching_preserves_work(self, small_scene, warps):
        base = self.run_config(warps, small_scene.addresses, 0)
        pref = self.run_config(warps, small_scene.addresses, 8)
        # Demand-side accounting is identical; only timing may change.
        assert pref.instructions == base.instructions
        assert pref.rt_traversal_steps == base.rt_traversal_steps
        assert pref.pixels_traced == base.pixels_traced

    def test_prefetches_issue_on_deep_traversals(self, small_scene, warps):
        cfg = dataclasses.replace(MOBILE_SOC, rt_prefetch_depth=4)
        # Drive one traversal job directly to reach the unit's counters.
        sm = SM(0, cfg, MemorySubsystem(cfg))
        unit = sm.rt_units[0]
        unit.try_acquire_slot()
        op = TraceOp(
            per_thread_nodes=([i * 7 for i in range(12)],),
            per_thread_tris=([],),
        )
        job = sm.make_trace_job(unit, op, small_scene.addresses)
        cycle = 0.0
        while not job.done:
            cycle = job.advance(cycle)
        assert unit.stats.prefetches_issued > 0

    def test_prefetching_never_slows_much(self, small_scene, warps):
        base = self.run_config(warps, small_scene.addresses, 0)
        pref = self.run_config(warps, small_scene.addresses, 8)
        # Prefetch may help little on L2-resident scenes, but must not
        # catastrophically hurt (it only adds already-needed fetches).
        assert pref.cycles <= base.cycles * 1.15
