"""The fast event loop is byte-identical to the reference loop.

``CycleSimulator.run`` drives the restructured :class:`~repro.gpu.
simulator.SimEngine` (per-op dispatch table, slim heap entries, batched
telemetry clock, memoized icache fetches); ``run_reference`` preserves
the original straight-line loop.  Every optimization is pinned here by
full-stats A/B comparison — including telemetry snapshots and timeline
events, which observe intermediate (not just final) counter state.
"""

from __future__ import annotations

from dataclasses import fields, replace

import pytest

from repro.gpu import MOBILE_SOC, CycleSimulator, compile_kernel
from repro.gpu.rt_unit import RTUnit
from repro.gpu.simulator import OP_COMPUTE, OP_STORE, OP_TRACE, compile_program
from repro.gpu.warp import ComputeOp, StoreOp, TraceOp, WarpTask
from repro.tracer import FunctionalTracer, RenderSettings


def _assert_identical(fast, ref):
    """Full-field equality, ignoring only wall-clock and telemetry."""
    fast = replace(fast, host_seconds=0.0)
    ref = replace(ref, host_seconds=0.0)
    fast_tel, ref_tel = fast.telemetry, ref.telemetry
    fast.telemetry = ref.telemetry = None
    if fast != ref:
        diffs = {
            f.name: (getattr(fast, f.name), getattr(ref, f.name))
            for f in fields(fast)
            if getattr(fast, f.name) != getattr(ref, f.name)
        }
        raise AssertionError(f"fast loop diverged from reference: {diffs}")
    if ref_tel is not None:
        assert fast_tel is not None
        assert fast_tel.interval == ref_tel.interval
        assert fast_tel.snapshots == ref_tel.snapshots
        assert fast_tel.events == ref_tel.events


def _run_both(config, scene, warps_factory):
    sim = CycleSimulator(config, scene.addresses)
    return sim.run(warps_factory()), sim.run_reference(warps_factory())


class TestFastPathIdentity:
    @pytest.mark.parametrize("scheduler", ["gto", "lrr"])
    def test_byte_identical(self, small_scene, small_frame, small_settings, scheduler):
        config = replace(MOBILE_SOC, warp_scheduler=scheduler)

        def warps():
            return compile_kernel(
                small_frame, small_settings.all_pixels(), small_scene.addresses
            )

        fast, ref = _run_both(config, small_scene, warps)
        _assert_identical(fast, ref)

    @pytest.mark.parametrize("scheduler", ["gto", "lrr"])
    def test_byte_identical_with_telemetry(
        self, small_scene, small_frame, small_settings, scheduler
    ):
        # Interval snapshots observe counters mid-run: they pin the batched
        # advance()/local-counter-flush protocol, not just the final sums.
        config = replace(
            MOBILE_SOC,
            warp_scheduler=scheduler,
            telemetry_interval=200,
            timeline_trace=True,
        )

        def warps():
            return compile_kernel(
                small_frame, small_settings.all_pixels(), small_scene.addresses
            )

        fast, ref = _run_both(config, small_scene, warps)
        _assert_identical(fast, ref)

    def test_byte_identical_under_rt_slot_pressure(
        self, small_scene, small_frame, small_settings
    ):
        # One RT slot per unit forces heavy parking/waking: pins the
        # deque-based FIFO wake order of both loops against each other.
        config = replace(MOBILE_SOC, rt_max_warps=1)

        def warps():
            return compile_kernel(
                small_frame, small_settings.all_pixels(), small_scene.addresses
            )

        fast, ref = _run_both(config, small_scene, warps)
        _assert_identical(fast, ref)

    def test_byte_identical_with_prefetch(
        self, small_scene, small_frame, small_settings
    ):
        config = replace(MOBILE_SOC, rt_prefetch_depth=2)

        def warps():
            return compile_kernel(
                small_frame, small_settings.all_pixels(), small_scene.addresses
            )

        fast, ref = _run_both(config, small_scene, warps)
        _assert_identical(fast, ref)

    def test_empty_workload(self, small_scene):
        sim = CycleSimulator(MOBILE_SOC, small_scene.addresses)
        _assert_identical(sim.run([]), sim.run_reference([]))

    def test_sets_sim_backend_provenance(self, small_full_stats):
        assert small_full_stats.sim_backend == "serial"


class TestCompileProgram:
    def test_rows_carry_kind_and_derived_scalars(self):
        compute = ComputeOp(per_thread_instructions=(3, 0, 5))
        trace = TraceOp(
            per_thread_nodes=([1, 2], None, [3]),
            per_thread_tris=([], None, [4]),
        )
        store = StoreOp(per_thread_addresses=(0x100, None, 0x140))
        task = WarpTask(warp_id=0, pixels=(), ops=[compute, trace, store])
        rows = compile_program(task)
        assert rows[0] == (OP_COMPUTE, compute, 5, 8)
        assert rows[1] == (OP_TRACE, trace, 2, 2)
        assert rows[2] == (OP_STORE, store, 2, 1)

    def test_masked_store_has_zero_issue_slots(self):
        store = StoreOp(per_thread_addresses=(None, None))
        task = WarpTask(warp_id=0, pixels=(), ops=[store])
        assert compile_program(task)[0][3] == 0

    def test_unknown_op_rejected(self):
        task = WarpTask(warp_id=0, pixels=(), ops=[object()])
        with pytest.raises(TypeError, match="unknown warp op"):
            compile_program(task)


class TestRTWaiterQueue:
    def test_waiters_wake_in_fifo_order(self):
        # The waiters queue is a deque precisely because the simulator pops
        # the head on every slot release; the wake order is load-bearing
        # (it decides which warp's traversal starts first) and must stay
        # first-parked-first-woken.
        unit = RTUnit(sm=None, max_warps=1, step_cycles=4)
        assert unit.try_acquire_slot()
        parked = [f"warp{i}" for i in range(5)]
        for state in parked:
            unit.waiters.append(state)
        woken = [unit.waiters.popleft() for _ in parked]
        assert woken == parked

    def test_fast_loop_uses_single_fifo_per_unit(
        self, small_scene, small_frame, small_settings
    ):
        # After a full run every waiter must have been woken (drained).
        from repro.gpu.simulator import SimEngine

        warps = compile_kernel(
            small_frame, small_settings.all_pixels(), small_scene.addresses
        )
        config = replace(MOBILE_SOC, rt_max_warps=1)
        engine = SimEngine(config, small_scene.addresses, warps)
        engine.run_until(float("inf"))
        engine.finish()
        for sm in engine.sms:
            for unit in sm.rt_units:
                assert not unit.waiters
                assert unit.free_slots == unit.max_warps


class TestIcacheWarmSlotMemo:
    def test_memo_counts_accesses_like_real_hits(self, small_scene):
        from repro.gpu.memory import MemorySubsystem
        from repro.gpu.sm import SM

        memory = MemorySubsystem(MOBILE_SOC)
        sm = SM(0, MOBILE_SOC, memory)
        # Cold fetch pays the icache latency, the warm replays are free
        # but still counted (miss-rate telemetry must not drift).
        assert sm.fetch_instructions(0) == float(MOBILE_SOC.icache.latency)
        before = sm.icache.stats.accesses
        for _ in range(3):
            assert sm.fetch_instructions(0) == 0.0
        assert sm.icache.stats.accesses == before + 3
        assert 0 in sm._warm_op_slots

    def test_slots_beyond_guarantee_bound_not_memoized(self, small_scene):
        from repro.gpu.memory import MemorySubsystem
        from repro.gpu.sm import SM

        memory = MemorySubsystem(MOBILE_SOC)
        sm = SM(0, MOBILE_SOC, memory)
        beyond = sm._warm_slot_limit
        sm.fetch_instructions(beyond)
        assert beyond not in sm._warm_op_slots


class TestSimEngineResumability:
    def test_epoch_stepping_matches_single_shot(
        self, small_scene, small_frame, small_settings
    ):
        # The sharded backend steps engines epoch by epoch; chunked
        # run_until calls must replay the serial run exactly.
        from repro.gpu.simulator import SimEngine

        def warps():
            return compile_kernel(
                small_frame, small_settings.all_pixels(), small_scene.addresses
            )

        whole = SimEngine(MOBILE_SOC, small_scene.addresses, warps())
        whole.run_until(float("inf"))
        one_shot = whole.finish()

        stepped = SimEngine(MOBILE_SOC, small_scene.addresses, warps())
        limit = 256.0
        while not stepped.done:
            stepped.run_until(limit)
            limit += 256.0
        chunked = stepped.finish()

        _assert_identical(one_shot, chunked)

    def test_explicit_sm_placement(self, small_scene, small_frame, small_settings):
        # Pinning every warp to SM 0 must match a 1-SM config's layout.
        from repro.gpu.simulator import SimEngine

        warps = compile_kernel(
            small_frame, small_settings.all_pixels(), small_scene.addresses
        )
        engine = SimEngine(
            MOBILE_SOC, small_scene.addresses, warps, sm_of_task=[0] * len(warps)
        )
        assert len(engine.queues[0]) + sum(
            1 for _, _, s in engine.heap if s.sm_index == 0
        ) == len(warps)
        for queue in engine.queues[1:]:
            assert not queue


def test_trace_smoke_regression(small_scene):
    """Timeline trace still renders from a fast-path run (zperf shape)."""
    settings = RenderSettings(width=16, height=16, samples_per_pixel=1, seed=3)
    frame = FunctionalTracer(small_scene, settings).trace_frame()
    warps = compile_kernel(frame, settings.all_pixels(), small_scene.addresses)
    config = replace(MOBILE_SOC, telemetry_interval=100, timeline_trace=True)
    stats = CycleSimulator(config, small_scene.addresses).run(warps)
    assert stats.telemetry is not None
    assert stats.telemetry.snapshots
    assert stats.telemetry.events
