"""Tests for the DRAM channel model and the interconnect."""

import pytest

from repro.gpu import DRAMChannel, Interconnect
from repro.gpu.dram import DRAMStats


class TestDRAMChannel:
    def make(self):
        return DRAMChannel(access_latency=100, service_cycles=8.0)

    def test_single_request_latency(self):
        channel = self.make()
        done = channel.request(0.0)
        assert done == pytest.approx(108.0)  # latency + transfer

    def test_back_to_back_requests_queue(self):
        channel = self.make()
        first = channel.request(0.0)
        second = channel.request(0.0)
        assert second == pytest.approx(first + 8.0)

    def test_spaced_requests_do_not_queue(self):
        channel = self.make()
        channel.request(0.0)
        done = channel.request(1000.0)
        assert done == pytest.approx(1108.0)

    def test_data_cycles_accumulate(self):
        channel = self.make()
        for _ in range(5):
            channel.request(0.0)
        assert channel.stats.data_cycles == pytest.approx(40.0)
        assert channel.stats.requests == 5

    def test_pending_intervals_merge_overlaps(self):
        channel = self.make()
        channel.request(0.0)     # pending [0, 108]
        channel.request(50.0)    # arrives 150, transfers until 158
        channel.finalize()
        # Overlapping intervals merge into one [0, 158] span.
        assert channel.stats.pending_cycles == pytest.approx(158.0)

    def test_pending_intervals_split_gaps(self):
        channel = self.make()
        channel.request(0.0)       # [0, 108]
        channel.request(1000.0)    # [1000, 1108]
        channel.finalize()
        assert channel.stats.pending_cycles == pytest.approx(216.0)

    def test_efficiency_vs_bw_utilization(self):
        channel = self.make()
        channel.request(0.0)
        channel.finalize()
        stats = channel.stats
        # Efficiency counts only pending time; BW utilization the whole run.
        assert stats.efficiency() == pytest.approx(8.0 / 108.0)
        assert stats.bandwidth_utilization(1000.0, 1) == pytest.approx(8.0 / 1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMChannel(access_latency=10, service_cycles=0)

    def test_stats_merge(self):
        a = DRAMStats(requests=1, data_cycles=8.0, pending_cycles=100.0)
        b = DRAMStats(requests=2, data_cycles=16.0, pending_cycles=50.0)
        a.merge(b)
        assert a.requests == 3
        assert a.data_cycles == 24.0

    def test_zero_cases(self):
        stats = DRAMStats()
        assert stats.efficiency() == 0.0
        assert stats.bandwidth_utilization(0.0, 4) == 0.0


class TestInterconnect:
    def make(self, partitions=4):
        return Interconnect(partitions, latency=20, line_bytes=128)

    def test_partition_interleaving(self):
        icnt = self.make(4)
        assert icnt.partition_of(0) == 0
        assert icnt.partition_of(128) == 1
        assert icnt.partition_of(512) == 0  # wraps every 4 lines

    def test_wire_latency(self):
        icnt = self.make()
        _, arrival = icnt.deliver(0, 100.0)
        assert arrival == pytest.approx(120.0)

    def test_port_contention_serializes(self):
        icnt = self.make(1)
        _, first = icnt.deliver(0, 0.0)
        _, second = icnt.deliver(0, 0.0)
        assert second > first

    def test_different_partitions_independent(self):
        icnt = self.make(2)
        _, a = icnt.deliver(0, 0.0)
        _, b = icnt.deliver(128, 0.0)
        assert a == b  # no shared port

    def test_downscaled_interconnect_changes_mapping(self):
        # Fewer partitions => the same line maps into a smaller space,
        # the "mesh topology changes automatically" property of §III-C.
        big, small = self.make(4), self.make(2)
        line = 3 * 128
        assert big.partition_of(line) == 3
        assert small.partition_of(line) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Interconnect(0, 20, 128)
