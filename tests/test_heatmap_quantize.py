"""Tests for heatmap generation (step 1) and K-Means quantization (step 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    HEAT_GRADIENT,
    Heatmap,
    color_to_temperature,
    kmeans,
    quantize_heatmap,
    temperature_to_color,
)
from repro.tracer.trace import FrameTrace, PixelTrace, RaySegment, SegmentKind


def synthetic_frame(width=8, height=8, hot_column=4, spread=40):
    """A frame whose column `hot_column` is much hotter than the rest."""
    frame = FrameTrace(
        width=width, height=height, samples_per_pixel=1, scene_name="synthetic"
    )
    for y in range(height):
        for x in range(width):
            nodes = list(range(spread if x == hot_column else 4))
            trace = PixelTrace(px=x, py=y)
            trace.segments.append(
                RaySegment(SegmentKind.PRIMARY, nodes, [], True, 10)
            )
            frame.pixels[(x, y)] = trace
    return frame


class TestGradient:
    def test_endpoints(self):
        assert np.allclose(temperature_to_color(0.0), HEAT_GRADIENT[0][1])
        assert np.allclose(temperature_to_color(1.0), HEAT_GRADIENT[-1][1])

    def test_clamps_out_of_range(self):
        assert np.allclose(temperature_to_color(-5.0), temperature_to_color(0.0))
        assert np.allclose(temperature_to_color(5.0), temperature_to_color(1.0))

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_roundtrip_through_color_space(self, t):
        recovered = color_to_temperature(temperature_to_color(t))
        assert abs(recovered - t) < 1e-6

    def test_warmer_is_redder(self):
        cold = temperature_to_color(0.1)
        hot = temperature_to_color(0.95)
        assert hot[0] > cold[0]  # more red
        assert hot[2] < cold[2]  # less blue


class TestHeatmap:
    def test_from_frame_normalizes(self):
        hm = Heatmap.from_frame(synthetic_frame(), warp_width=0)
        assert hm.temperatures.max() == pytest.approx(1.0)
        assert hm.temperatures.min() >= 0.0

    def test_hot_column_is_hottest(self):
        hm = Heatmap.from_frame(synthetic_frame(hot_column=4), warp_width=0)
        assert hm.temperature_at(4, 0) > hm.temperature_at(0, 0)

    def test_warp_flattening_spreads_heat(self):
        # With an 8-wide warp the hot pixel warms its whole run.
        flat = Heatmap.from_frame(synthetic_frame(), warp_width=8)
        assert flat.temperature_at(0, 0) == pytest.approx(flat.temperature_at(4, 0))

    def test_empty_frame_rejected(self):
        empty = FrameTrace(width=4, height=4, samples_per_pixel=1, scene_name="x")
        with pytest.raises(ValueError):
            Heatmap.from_frame(empty)

    def test_to_colors_shape(self):
        hm = Heatmap.from_frame(synthetic_frame())
        assert hm.to_colors().shape == (8, 8, 3)

    def test_mean_temperature_bounds(self):
        hm = Heatmap.from_frame(synthetic_frame())
        assert 0.0 < hm.mean_temperature() <= 1.0


class TestKMeans:
    def test_separable_clusters_found(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.05, size=(50, 3))
        b = rng.normal(5.0, 0.05, size=(50, 3))
        centroids, labels = kmeans(np.vstack([a, b]), k=2, seed=1)
        # Points from the same blob share a label.
        assert len(set(labels[:50])) == 1
        assert len(set(labels[50:])) == 1
        assert labels[0] != labels[50]

    def test_deterministic_under_seed(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(size=(100, 3))
        c1, l1 = kmeans(points, 4, seed=9)
        c2, l2 = kmeans(points, 4, seed=9)
        assert np.array_equal(l1, l2)
        assert np.allclose(c1, c2)

    def test_k_clamped_to_point_count(self):
        points = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
        centroids, labels = kmeans(points, k=10)
        assert centroids.shape[0] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 3)), 2)
        with pytest.raises(ValueError):
            kmeans(np.ones((5, 3)), 0)

    def test_identical_points(self):
        points = np.ones((20, 3))
        centroids, labels = kmeans(points, 3, seed=0)
        assert np.allclose(centroids[labels[0]], 1.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=500))
    def test_property_labels_reference_valid_centroids(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(size=(40, 3))
        centroids, labels = kmeans(points, 5, seed=seed)
        assert labels.min() >= 0 and labels.max() < centroids.shape[0]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=500))
    def test_property_assignment_is_nearest_centroid(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(size=(30, 3))
        centroids, labels = kmeans(points, 4, seed=seed)
        for i, point in enumerate(points):
            distances = np.sum((centroids - point) ** 2, axis=1)
            assert distances[labels[i]] <= distances.min() + 1e-9


class TestQuantizeHeatmap:
    def test_quantization_shapes(self):
        hm = Heatmap.from_frame(synthetic_frame(), warp_width=0)
        q = quantize_heatmap(hm, num_colors=4, seed=0)
        assert q.labels.shape == hm.temperatures.shape
        assert q.palette.shape[0] == q.num_colors == len(q.coolness)

    def test_coolness_ordering_matches_temperature(self):
        hm = Heatmap.from_frame(synthetic_frame(spread=100), warp_width=0)
        q = quantize_heatmap(hm, num_colors=3, seed=0)
        hot_label = q.label_at(4, 0)
        cold_label = q.label_at(0, 0)
        assert q.coolness[hot_label] < q.coolness[cold_label]

    def test_warmth_complements_coolness(self):
        hm = Heatmap.from_frame(synthetic_frame())
        q = quantize_heatmap(hm)
        assert np.allclose(q.warmth(), 1.0 - q.coolness)

    def test_histogram_totals(self):
        hm = Heatmap.from_frame(synthetic_frame())
        q = quantize_heatmap(hm, num_colors=4)
        assert q.color_histogram().sum() == 64
        subset = [(0, 0), (1, 0), (4, 0)]
        assert q.color_histogram(subset).sum() == 3

    def test_quantized_render_uses_palette(self):
        hm = Heatmap.from_frame(synthetic_frame())
        q = quantize_heatmap(hm, num_colors=4)
        image = q.to_colors()
        unique = {tuple(np.round(c, 6)) for c in image.reshape(-1, 3)}
        assert len(unique) <= 4
