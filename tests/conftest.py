"""Shared fixtures: a small deterministic scene, traced frames, sims.

Expensive artifacts (frame traces, full simulations) are session-scoped;
tests must treat them as immutable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import MOBILE_SOC, CycleSimulator, compile_kernel
from repro.scene import Camera, MaterialTable, Scene, diffuse, mirror, PointLight
from repro.scene.meshes import box, ground_plane, icosphere
from repro.scene.vecmath import vec3
from repro.tracer import FunctionalTracer, RenderSettings


@pytest.fixture(scope="session")
def small_scene() -> Scene:
    """A compact deterministic scene: floor, diffuse sphere, mirror box."""
    materials = MaterialTable()
    red = materials.add(diffuse(0.8, 0.2, 0.2))
    shiny = materials.add(mirror(0.9))
    floor = materials.add(diffuse(0.5, 0.5, 0.5))
    tris = ground_plane(6.0, material_id=floor)
    tris += icosphere(vec3(-0.8, 1.0, 0.0), 0.9, subdivisions=1, material_id=red)
    tris += box(vec3(1.2, 0.7, 0.0), vec3(0.6, 0.7, 0.6), material_id=shiny)
    camera = Camera(position=vec3(0.0, 1.6, 4.5), look_at=vec3(0.0, 0.9, 0.0))
    lights = [PointLight(position=vec3(3.0, 5.0, 3.0))]
    return Scene(tris, camera, lights, materials, name="small", max_bounces=2)


@pytest.fixture(scope="session")
def small_settings() -> RenderSettings:
    return RenderSettings(width=32, height=32, samples_per_pixel=1, seed=0)


@pytest.fixture(scope="session")
def small_frame(small_scene, small_settings):
    """Full-plane trace of the small scene (32x32)."""
    return FunctionalTracer(small_scene, small_settings).trace_frame()


@pytest.fixture(scope="session")
def small_full_stats(small_scene, small_settings, small_frame):
    """Ground-truth Mobile SoC simulation of the small scene."""
    warps = compile_kernel(
        small_frame, small_settings.all_pixels(), small_scene.addresses
    )
    return CycleSimulator(MOBILE_SOC, small_scene.addresses).run(warps)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
