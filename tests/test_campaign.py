"""Tests for the campaign engine: samplesheets, QC gates, waves, goldens.

The acceptance grid (2 library scenes + 2 procedural recipes + one
4-frame orbiting sequence, crossed with both Table II GPU configs) runs
once as a module fixture; the assertions then pin the three campaign
guarantees: library points stay byte-identical to the golden predict
metrics, shared stages execute once per unique scene, and the sequence
shows a nonzero cross-frame prediction-cache hit rate.
"""

import json
from pathlib import Path

import pytest

from repro.core.pipeline import Zatel
from repro.core.stages.campaign import (
    Campaign,
    CampaignPlanner,
    CampaignPoint,
    QCGates,
    load_samplesheet,
    load_samplesheet_document,
    parse_samplesheet,
)
from repro.core.stages.store import ArtifactStore
from repro.gpu import MOBILE_SOC, RTX_2060
from repro.scene.animation import SceneSequence
from repro.scene.registry import clear_scene_cache, resolve_scene
from repro.scene.spec import SceneSpec

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_predict.json").read_text()
)

CI_GATE = {"max_ci_half_width": 0.05}


def _sheet(points, **campaign):
    defaults = {"name": "t", "size": 12, "gpus": ["mobile"]}
    defaults.update(campaign)
    return {"campaign": defaults, "points": points}


# ---------------------------------------------------------------------------
# samplesheet schema
# ---------------------------------------------------------------------------


class TestSamplesheetSchema:
    def test_minimal_sheet_parses(self):
        campaign = parse_samplesheet(_sheet([{"scene": "SPRNG"}]))
        assert campaign.name == "t"
        assert len(campaign.points) == 1
        point = campaign.points[0]
        assert point.spec == SceneSpec.library("SPRNG")
        assert point.size == 12 and point.gpu.name == "MobileSoC"

    def test_not_a_mapping_rejected(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            parse_samplesheet([{"scene": "SPRNG"}])

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown samplesheet section"):
            parse_samplesheet({"points": [{"scene": "SPRNG"}], "rows": []})

    def test_unknown_campaign_field_rejected(self):
        with pytest.raises(ValueError, match="campaign: unknown field"):
            parse_samplesheet(
                {"campaign": {"sizes": 12}, "points": [{"scene": "SPRNG"}]}
            )

    def test_unknown_row_field_names_the_row(self):
        sheet = _sheet([{"scene": "SPRNG"}, {"scene": "BUNNY", "gppu": "x"}])
        with pytest.raises(ValueError, match=r"points\[1\]: unknown field"):
            parse_samplesheet(sheet)

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError, match="non-empty points"):
            parse_samplesheet({"points": []})

    def test_row_without_scene_rejected(self):
        with pytest.raises(ValueError, match=r"points\[0\].*scene"):
            parse_samplesheet(_sheet([{"mode": "zatel"}]))

    def test_gpu_and_gpus_conflict_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            parse_samplesheet(
                _sheet([{"scene": "SPRNG", "gpu": "mobile", "gpus": ["mobile"]}])
            )

    def test_unknown_gpu_names_the_row(self):
        with pytest.raises(ValueError, match=r"points\[0\]"):
            parse_samplesheet(_sheet([{"scene": "SPRNG", "gpu": "tpu"}]))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            parse_samplesheet(_sheet([{"scene": "SPRNG", "backend": "cuda"}]))

    def test_unknown_config_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown config field"):
            parse_samplesheet(
                _sheet([{"scene": "SPRNG", "config": {"divsion": "fine"}}])
            )

    def test_unknown_qc_field_rejected(self):
        with pytest.raises(ValueError, match="unknown qc field"):
            parse_samplesheet(
                _sheet([{"scene": "SPRNG", "qc": {"min_cov": 0.5}}])
            )

    def test_qc_range_violation_names_the_row(self):
        with pytest.raises(ValueError, match=r"points\[0\]: min_coverage"):
            parse_samplesheet(
                _sheet([{"scene": "SPRNG", "qc": {"min_coverage": 2.0}}])
            )

    def test_bad_scene_recipe_names_the_row(self):
        with pytest.raises(ValueError, match=r"points\[0\]: unknown scene recipe"):
            parse_samplesheet(_sheet([{"scene": {"recipe": "fog"}}]))

    def test_gpus_expand_to_one_point_each(self):
        campaign = parse_samplesheet(
            _sheet([{"scene": "SPRNG", "gpus": ["mobile", "rtx2060"]}])
        )
        assert [p.gpu.name for p in campaign.points] == ["MobileSoC", "RTX2060"]
        assert {p.row for p in campaign.points} == {0}

    def test_sequence_expands_to_frame_points(self):
        campaign = parse_samplesheet(
            _sheet(
                [
                    {
                        "scene": {
                            "sequence": "saturation",
                            "frames": 3,
                            "knobs": {"level": 0.5},
                        }
                    }
                ]
            )
        )
        assert [p.spec.frame for p in campaign.points] == [0, 1, 2]
        assert all(p.spec.kind == "frame" for p in campaign.points)
        assert {p.row for p in campaign.points} == {0}

    def test_row_overrides_beat_campaign_defaults(self):
        campaign = parse_samplesheet(
            _sheet(
                [{"scene": "SPRNG", "size": 8, "seed": 7, "qc": CI_GATE}],
                size=24,
                qc={"min_coverage": 0.5},
            )
        )
        point = campaign.points[0]
        assert point.size == 8 and point.seed == 7
        assert point.gates == QCGates(max_ci_half_width=0.05)

    def test_campaign_fingerprint_is_content_addressed(self):
        a = parse_samplesheet(_sheet([{"scene": "SPRNG"}]))
        b = parse_samplesheet(_sheet([{"scene": "SPRNG"}]))
        c = parse_samplesheet(_sheet([{"scene": "SPRNG", "seed": 1}]))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


class TestSamplesheetFiles:
    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "sheet.json"
        path.write_text(json.dumps(_sheet([{"scene": "SPRNG"}])))
        campaign = load_samplesheet(path)
        assert campaign.points[0].spec == SceneSpec.library("SPRNG")

    def test_json_default_name_is_stem(self, tmp_path):
        path = tmp_path / "nightly.json"
        path.write_text(json.dumps({"points": [{"scene": "SPRNG"}]}))
        assert load_samplesheet(path).name == "nightly"

    def test_invalid_json_names_the_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_samplesheet(path)

    def test_non_mapping_document_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="must be a mapping"):
            load_samplesheet_document(path)

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "sheet.yaml"
        path.write_text("scene: SPRNG")
        with pytest.raises(ValueError, match="unknown samplesheet format"):
            load_samplesheet(path)

    def test_toml_samplesheet(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "grid.toml"
        path.write_text(
            "\n".join(
                [
                    "[campaign]",
                    'name = "grid"',
                    "size = 12",
                    'gpus = ["mobile", "rtx2060"]',
                    "",
                    "[[points]]",
                    'scene = "SPRNG"',
                    "",
                    "[[points]]",
                    'scene = { recipe = "saturation", knobs = { level = 0.4 } }',
                    "qc = { min_coverage = 0.9, on_violation = \"fail\" }",
                ]
            )
        )
        campaign = load_samplesheet(path)
        assert campaign.name == "grid"
        assert len(campaign.points) == 4  # 2 rows x 2 gpus
        assert campaign.points[2].spec.kind == "recipe"
        assert campaign.points[2].gates.on_violation == "fail"

    def test_invalid_toml_names_the_file(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "bad.toml"
        path.write_text("[campaign\nname=")
        with pytest.raises(ValueError, match="invalid TOML"):
            load_samplesheet(path)


# ---------------------------------------------------------------------------
# QC gates
# ---------------------------------------------------------------------------


class _FakeResult:
    def __init__(self, coverage=1.0, metrics=None, intervals=None):
        self.coverage = coverage
        self.metrics = metrics or {}
        self._intervals = intervals or {}

    def confidence_intervals(self):
        return self._intervals


class TestQCGates:
    def test_inactive_by_default(self):
        assert not QCGates().active
        assert QCGates().check(_FakeResult()) == []

    def test_on_violation_validated(self):
        with pytest.raises(ValueError, match="on_violation"):
            QCGates(on_violation="explode")

    def test_min_coverage_violation_message(self):
        gates = QCGates(min_coverage=0.9)
        violations = gates.check(_FakeResult(coverage=0.5))
        assert violations and "coverage" in violations[0]
        assert gates.check(_FakeResult(coverage=0.95)) == []

    def test_ci_gate_passes_tight_intervals(self):
        gates = QCGates(max_ci_half_width=0.10)
        result = _FakeResult(
            metrics={"cycles": 100.0}, intervals={"cycles": (95.0, 105.0)}
        )
        assert gates.check(result) == []

    def test_ci_gate_flags_wide_intervals(self):
        gates = QCGates(max_ci_half_width=0.01)
        result = _FakeResult(
            metrics={"cycles": 100.0}, intervals={"cycles": (80.0, 120.0)}
        )
        violations = gates.check(result)
        assert violations and "cycles" in violations[0]

    def test_ci_gate_violated_by_missing_intervals(self):
        # A precision demand the result cannot certify is a violation —
        # the point sampler must be replicated, not waved through.
        violations = QCGates(max_ci_half_width=0.05).check(_FakeResult())
        assert violations and "no confidence intervals" in violations[0]


# ---------------------------------------------------------------------------
# execution: verdicts, waves, propagation
# ---------------------------------------------------------------------------


def _frame_points(gates_by_frame, frames=3, size=10):
    """One sequence row with per-frame QC gates (programmatic campaign)."""
    sequence = SceneSequence.from_value(
        {
            "sequence": "saturation",
            "frames": frames,
            "knobs": {"level": 0.4},
            "seed": 5,
            "orbit_degrees": 6.0,
        }
    )
    return [
        CampaignPoint(
            spec=spec,
            gpu=MOBILE_SOC,
            size=size,
            gates=gates_by_frame.get(spec.frame, QCGates()),
            row=0,
        )
        for spec in sequence.frame_specs()
    ]


class TestCampaignExecution:
    def test_gate_trip_degrades_point(self):
        campaign = parse_samplesheet(
            _sheet([{"scene": "SPRNG", "qc": CI_GATE}], size=10)
        )
        result = CampaignPlanner().run(campaign)
        outcome = result.outcomes[0]
        assert outcome.verdict == "degraded"
        assert "no confidence intervals" in outcome.violations[0]
        assert result.succeeded  # degraded still counts as success

    def test_replicated_sampler_satisfies_ci_gate(self):
        campaign = parse_samplesheet(
            _sheet(
                [
                    {
                        "scene": "SPRNG",
                        "qc": {"max_ci_half_width": 10.0},
                        "config": {"sampler": "ranked_set", "replicates": 3},
                    }
                ],
                size=10,
            )
        )
        result = CampaignPlanner().run(campaign)
        assert result.outcomes[0].verdict == "pass"

    def test_failed_frame_skips_rest_of_row(self):
        points = _frame_points(
            {0: QCGates(max_ci_half_width=0.05, on_violation="fail")}
        )
        result = CampaignPlanner().run(Campaign(name="seq", points=tuple(points)))
        assert [o.verdict for o in result.outcomes] == [
            "failed", "skipped", "skipped",
        ]
        assert not result.succeeded
        assert "skipped" in result.outcomes[1].violations[0]

    def test_degraded_frame_taints_downstream_frames(self):
        points = _frame_points({0: QCGates(max_ci_half_width=0.05)})
        result = CampaignPlanner().run(Campaign(name="seq", points=tuple(points)))
        assert [o.verdict for o in result.outcomes] == [
            "degraded", "degraded", "degraded",
        ]
        assert "inherited" in result.outcomes[1].violations[0]

    def test_sequence_frames_execute_in_waves(self):
        points = _frame_points({})
        result = CampaignPlanner().run(Campaign(name="seq", points=tuple(points)))
        assert result.waves == 3
        assert all(o.verdict == "pass" for o in result.outcomes)
        # Every packet-backend frame reports its carry stats.
        assert all(o.sequence is not None for o in result.outcomes)
        assert result.outcomes[0].sequence["carried_hits"] == 0

    def test_duplicate_points_share_all_stage_work(self):
        campaign = parse_samplesheet(
            _sheet([{"scene": "SPRNG"}, {"scene": "SPRNG"}], size=10)
        )
        result = CampaignPlanner().run(campaign)
        assert result.executions_of("profile") == 1
        assert result.executions_of("simulate_groups") == 1
        # The two points collapse to one set of DAG nodes.
        assert result.total_nodes == 2 * result.unique_nodes

    def test_scene_token_separates_workload_coordinates(self):
        spec = SceneSpec.library("SPRNG")
        a = CampaignPoint(spec=spec, gpu=MOBILE_SOC, size=10, seed=0)
        b = CampaignPoint(spec=spec, gpu=MOBILE_SOC, size=10, seed=1)
        assert a.scene_token() != b.scene_token()

    def test_campaign_needs_points(self):
        with pytest.raises(ValueError, match="at least one point"):
            Campaign(name="empty", points=())


# ---------------------------------------------------------------------------
# acceptance: the full grid, golden identity, dedup, sequence carry
# ---------------------------------------------------------------------------

ACCEPTANCE_SHEET = {
    "campaign": {
        "name": "acceptance",
        "size": 24,
        "spp": 1,
        "seed": 0,
        "backend": "packet",
        "gpus": ["mobile", "rtx2060"],
    },
    "points": [
        {"scene": "SPRNG"},
        {"scene": "BUNNY"},
        {"scene": {"recipe": "saturation", "knobs": {"level": 0.4}, "seed": 1}},
        {
            "scene": {
                "recipe": "clutter",
                "knobs": {"triangles_target": 1500},
                "seed": 3,
            }
        },
        {
            "scene": {
                "sequence": "saturation",
                "frames": 4,
                "knobs": {"level": 0.5},
                "seed": 2,
                "orbit_degrees": 12.0,
            }
        },
    ],
}


@pytest.fixture(scope="module")
def acceptance():
    campaign = parse_samplesheet(ACCEPTANCE_SHEET)
    return campaign, CampaignPlanner(store=ArtifactStore()).run(campaign)


class TestAcceptanceCampaign:
    def test_grid_shape(self, acceptance):
        campaign, result = acceptance
        # (2 library + 2 recipes + 4 sequence frames) x 2 GPUs.
        assert len(campaign.points) == 16
        assert len(result.outcomes) == 16
        assert result.waves == 4  # frame 0 wave + frames 1..3
        assert result.succeeded
        assert result.verdict_counts()["pass"] == 16

    def test_library_points_byte_identical_to_golden(self, acceptance):
        campaign, result = acceptance
        meta = GOLDEN["meta"]
        assert (meta["size"], meta["spp"], meta["seed"], meta["backend"]) == (
            24, 1, 0, "packet",
        )
        checked = 0
        for outcome in result.outcomes:
            point = outcome.point
            if point.spec.kind != "library" or point.gpu.name != meta["gpu"]:
                continue
            expected = GOLDEN["metrics"][point.spec.name]
            assert set(outcome.value.metrics) == set(expected)
            for name, value in expected.items():
                assert outcome.value.metrics[name] == value, (
                    f"{point.spec.name}.{name} drifted inside the campaign"
                )
            checked += 1
        assert checked == 2  # SPRNG and BUNNY on the golden GPU

    def test_shared_stages_execute_once_per_unique_scene(self, acceptance):
        _, result = acceptance
        # 8 unique scenes (2 library + 2 recipes + 4 frames); profile and
        # quantize are GPU-independent, so both GPUs share them.
        assert result.executions_of("profile") == 8
        assert result.executions_of("quantize") == 8
        # Per-(scene, gpu) stages run for all 16 points.
        assert result.executions_of("simulate_groups") == 16
        # One downscale per distinct (gpu, config).
        assert result.executions_of("downscale") == 2
        assert result.total_nodes > result.unique_nodes

    def test_sequence_shows_cross_frame_cache_hits(self, acceptance):
        _, result = acceptance
        frames = [o for o in result.outcomes if o.sequence is not None]
        # 4 frames x 2 GPU chains; carry stats are chain-independent
        # (the pass is a scene/workload property, memoized by content).
        assert len(frames) == 8
        assert all(f.sequence["lookups"] > 0 for f in frames)
        assert result.sequence_hit_rate() > 0.0
        later = [f for f in frames if f.point.spec.frame > 0]
        assert sum(f.sequence["carried_hits"] for f in later) > 0

    def test_campaign_report_is_json_able(self, acceptance):
        from repro.harness.reporting import campaign_report

        _, result = acceptance
        report = campaign_report(result)
        encoded = json.loads(json.dumps(report))
        assert encoded["succeeded"] is True
        assert encoded["campaign"] == "acceptance"
        assert len(encoded["points"]) == 16
        assert encoded["dag"]["deduplicated_nodes"] > 0
        assert encoded["sequence_hit_rate"] > 0.0
        sequence_entries = [
            p for p in encoded["points"] if "sequence_cache" in p
        ]
        assert len(sequence_entries) == 8


# ---------------------------------------------------------------------------
# fleet bundles carry scene specs
# ---------------------------------------------------------------------------


class TestFleetRecipeBundles:
    def _simulate_inputs(self, scene, store):
        """Resolve the Zatel graph up to the simulate stage's inputs."""
        from repro.core.stages.base import StageContext
        from repro.tracer.tracer import FunctionalTracer, RenderSettings

        frame = FunctionalTracer(
            scene, RenderSettings(width=10, height=10, tracing_backend="packet")
        ).trace_frame()
        predictor = Zatel(MOBILE_SOC)
        graph, _ = predictor.build_graph(scene, frame)
        nodes = {node.stage.name: node for node in graph.nodes}
        ctx = StageContext(store=store)
        quantized = graph.resolve(nodes["quantize"], ctx).value
        groups = graph.resolve(nodes["partition"], ctx).value
        fractions = graph.resolve(nodes["select"], ctx).value
        scaled_gpu, _ = graph.resolve(nodes["downscale"], ctx).value
        return predictor, frame, quantized, groups, scaled_gpu, fractions

    def test_bundle_key_separates_equal_display_names(self):
        from repro.fleet.dispatch import bundle_key_for

        store = ArtifactStore()
        spec_a = SceneSpec.recipe("saturation", {"level": 0.4}, seed=1)
        spec_b = SceneSpec.recipe("saturation", {"level": 0.4}, seed=2)
        scene_a, scene_b = resolve_scene(spec_a), resolve_scene(spec_b)
        assert scene_a.name == scene_b.name  # display names collide
        keys = set()
        for scene in (scene_a, scene_b):
            predictor, frame, quantized, groups, scaled, fractions = (
                self._simulate_inputs(scene, store)
            )
            keys.add(
                bundle_key_for(
                    predictor, frame, quantized, groups, scaled, fractions,
                    scene,
                )
            )
        assert len(keys) == 2  # specs, not names, address the bundles

    def test_execute_lease_rebuilds_recipe_scene_from_spec(self):
        from repro.core.pipeline import GroupPrediction
        from repro.fleet.dispatch import execute_lease, pack_bundle

        store = ArtifactStore()
        spec = SceneSpec.recipe("saturation", {"level": 0.3}, seed=4)
        scene = resolve_scene(spec)
        predictor, frame, quantized, groups, scaled, fractions = (
            self._simulate_inputs(scene, store)
        )
        bundle_key = pack_bundle(
            store, predictor, frame, quantized, groups, scaled, fractions,
            scene,
        )
        # The bundle carries the self-contained spec, not the scene.
        assert store.get(bundle_key)["scene"] == spec

        # A worker that has never built this scene (cold registry)
        # rebuilds it from the spec alone and computes the group.
        clear_scene_cache()
        result_key = execute_lease(store, bundle_key, 0)
        prediction = store.get(result_key)
        assert isinstance(prediction, GroupPrediction)
        assert prediction.index == 0
