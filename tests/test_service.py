"""Tests for the HTTP prediction service and its building blocks.

The HTTP-level tests boot a real :class:`ZatelService` on an ephemeral
port with an *injected* executor function, so queue/coalescing/shutdown
behaviour is exercised over actual sockets without paying for real
predictions.  One end-to-end test at the bottom runs the genuine
pipeline on a tiny plane and checks the served payload against a local
in-process prediction.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.stages.requests import PredictSpec
from repro.core.stages.singleflight import SingleFlight
from repro.gpu.telemetry import ServiceStats
from repro.harness.runner import Runner
from repro.harness.service import ServiceRunner
from repro.service import (
    JobQueue,
    QueueClosedError,
    QueueFullError,
    ResultCache,
    ZatelService,
    parse_predict_payload,
)

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _post(base: str, body: dict) -> tuple[int, dict, dict]:
    """POST /predict; returns (status, payload, headers) without raising."""
    request = urllib.request.Request(
        f"{base}/predict", data=json.dumps(body).encode(), method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _get(base: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(f"{base}{path}", timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _payload_for(spec) -> dict:
    return {
        "scene": spec.scene,
        "metrics": {"cycles": float(spec.size)},
        "degraded": False,
    }


@pytest.fixture()
def service_factory(tmp_path):
    """Builds services on ephemeral ports; tears them down afterwards."""
    contexts = []

    def build(**kwargs) -> tuple[ZatelService, str]:
        kwargs.setdefault("runner", Runner(cache_dir=tmp_path / "cache"))
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("queue_capacity", 4)
        service = ZatelService(port=0, **kwargs)
        ctx = service.background()
        ctx.__enter__()
        contexts.append(ctx)
        return service, f"http://127.0.0.1:{service.port}"

    yield build
    for ctx in reversed(contexts):
        ctx.__exit__(None, None, None)


# ---------------------------------------------------------------------------
# SingleFlight
# ---------------------------------------------------------------------------


class TestSingleFlight:
    def test_do_runs_leader_once_and_shares_value(self):
        flights = SingleFlight()
        calls = []
        release = threading.Event()

        def compute():
            calls.append(1)
            release.wait(5)
            return 42

        results = []

        def worker():
            results.append(flights.do("k", compute))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        # Wait until the leader is inside compute, then release everyone.
        deadline = time.monotonic() + 5
        while not calls and time.monotonic() < deadline:
            time.sleep(0.01)
        release.set()
        for t in threads:
            t.join(5)
        assert len(calls) == 1
        assert [value for value, _ in results] == [42] * 4
        assert sum(1 for _, coalesced in results if not coalesced) == 1

    def test_do_propagates_leader_error_to_followers(self):
        flights = SingleFlight()

        def boom():
            raise RuntimeError("leader failed")

        with pytest.raises(RuntimeError, match="leader failed"):
            flights.do("k", boom)
        # The key is released afterwards: a retry runs fresh.
        value, coalesced = flights.do("k", lambda: 7)
        assert (value, coalesced) == (7, False)

    def test_join_coalesces_until_finish(self):
        flights = SingleFlight()
        first, created = flights.join("k", lambda: object())
        again, created2 = flights.join("k", lambda: object())
        assert created and not created2
        assert again is first
        flights.finish("k")
        fresh, created3 = flights.join("k", lambda: object())
        assert created3 and fresh is not first

    def test_join_factory_error_inserts_nothing(self):
        flights = SingleFlight()
        with pytest.raises(ValueError):
            flights.join("k", lambda: (_ for _ in ()).throw(ValueError("no")))
        assert flights.get("k") is None
        assert len(flights) == 0


# ---------------------------------------------------------------------------
# protocol validation
# ---------------------------------------------------------------------------


class TestParsePredictPayload:
    def test_minimal_valid(self):
        spec, wait = parse_predict_payload({"scene": "SPRNG"})
        assert spec == PredictSpec(scene="SPRNG")
        assert wait is True

    def test_full_round_trip(self):
        spec, wait = parse_predict_payload(
            {"scene": "BUNNY", "size": 32, "spp": 2, "seed": 5,
             "backend": "scalar", "gpu": "rtx2060", "division": "coarse",
             "distribution": "lintmp", "fraction": 0.5, "adaptive": True,
             "wait": False}
        )
        assert spec.backend == "scalar"
        assert spec.fraction == 0.5
        assert wait is False

    @pytest.mark.parametrize(
        "body",
        [
            None,
            [],
            "scene",
            {},  # missing scene
            {"scene": "SPRNG", "sizzle": 9},  # unknown key
            {"scene": "NOPE"},  # unknown scene
            {"scene": "SPRNG", "size": "big"},  # wrong type
            {"scene": "SPRNG", "size": True},  # bool is not an int
            {"scene": "SPRNG", "size": 9999},  # out of range
            {"scene": "SPRNG", "fraction": 1.5},  # out of range
            {"scene": "SPRNG", "backend": "cuda"},
            {"scene": "SPRNG", "wait": 1},  # wait must be bool
        ],
    )
    def test_malformed_bodies_raise(self, body):
        with pytest.raises(ValueError):
            parse_predict_payload(body)


# ---------------------------------------------------------------------------
# JobQueue
# ---------------------------------------------------------------------------


class TestJobQueue:
    def test_submit_next_complete_lifecycle(self):
        queue = JobQueue(capacity=2)
        job, created = queue.submit("a", PredictSpec(scene="SPRNG"))
        assert created and job.status == "queued"
        picked = queue.next(timeout=1)
        assert picked is job and job.status == "running"
        queue.complete(job, result={"ok": True})
        assert job.status == "done" and job.wait(1)
        assert queue.depth == 0

    def test_capacity_counts_queued_plus_running(self):
        queue = JobQueue(capacity=2)
        queue.submit("a", None)
        running = queue.next(timeout=1)
        queue.submit("b", None)  # 1 running + 1 queued = at capacity
        with pytest.raises(QueueFullError) as excinfo:
            queue.submit("c", None)
        assert excinfo.value.retry_after >= 1.0
        queue.complete(running, result={})
        job, created = queue.submit("c", None)  # capacity freed
        assert created

    def test_identical_keys_coalesce_without_consuming_capacity(self):
        queue = JobQueue(capacity=1)
        job, created = queue.submit("same", None)
        again, created2 = queue.submit("same", None)
        assert created and not created2
        assert again is job
        assert queue.depth == 1

    def test_closed_queue_rejects_submissions(self):
        queue = JobQueue(capacity=1)
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.submit("a", None)

    def test_drain_waits_for_inflight(self):
        queue = JobQueue(capacity=2)
        queue.submit("a", None)
        job = queue.next(timeout=1)
        queue.close()

        def finish_later():
            time.sleep(0.1)
            queue.complete(job, result={})

        threading.Thread(target=finish_later).start()
        assert queue.drain(timeout=5) is True

    def test_drain_times_out_when_job_stuck(self):
        queue = JobQueue(capacity=1)
        queue.submit("a", None)
        queue.next(timeout=1)  # running, never completed
        queue.close()
        assert queue.drain(timeout=0.1) is False


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_hit_miss_accounting(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        stats = ServiceStats()
        cache = ResultCache(runner.store, stats)
        assert cache.get("fp") is None
        cache.put("fp", {"metrics": {"cycles": 1.0}})
        assert cache.get("fp") == {"metrics": {"cycles": 1.0}}
        assert stats.cache_misses == 1
        assert stats.cache_hits == 1

    def test_degraded_results_are_never_cached(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        cache = ResultCache(runner.store)
        cache.put("fp", {"metrics": {}, "degraded": True})
        assert cache.contains("fp") is False


# ---------------------------------------------------------------------------
# ZatelService over HTTP (injected executor)
# ---------------------------------------------------------------------------


class TestServiceHttp:
    def test_malformed_request_is_400(self, service_factory):
        _, base = service_factory(executor_fn=_payload_for)
        status, payload, _ = _post(base, {"scene": "SPRNG", "sizzle": 9})
        assert status == 400
        assert "sizzle" in payload["error"]
        status, payload, _ = _post(base, {"scene": "SPRNG", "size": True})
        assert status == 400
        # non-JSON body
        request = urllib.request.Request(
            f"{base}/predict", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_paths_and_methods(self, service_factory):
        _, base = service_factory(executor_fn=_payload_for)
        assert _get(base, "/nope")[0] == 404
        assert _get(base, "/jobs/zzz")[0] == 404
        assert _get(base, "/predict")[0] == 405
        assert _get(base, "/healthz")[1]["status"] == "ok"

    def test_backpressure_returns_429_with_retry_after(self, service_factory):
        gate = threading.Event()

        def blocked(spec):
            gate.wait(30)
            return _payload_for(spec)

        service, base = service_factory(
            executor_fn=blocked, workers=1, queue_capacity=1, use_cache=False
        )
        try:
            status, first, _ = _post(
                base, {"scene": "SPRNG", "size": 16, "wait": False}
            )
            assert status == 202
            # Wait for the worker to pick it up; depth stays 1 (running).
            deadline = time.monotonic() + 5
            while service.queue.running == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            status, payload, headers = _post(
                base, {"scene": "SPRNG", "size": 32, "wait": False}
            )
            assert status == 429
            assert "Retry-After" in headers
            assert payload["retry_after"] >= 1.0
            assert service.stats.rejected == 1
        finally:
            gate.set()

    def test_concurrent_identical_requests_share_one_execution(
        self, service_factory
    ):
        executions = []
        gate = threading.Event()

        def slow(spec):
            executions.append(spec)
            gate.wait(30)
            return _payload_for(spec)

        service, base = service_factory(
            executor_fn=slow, workers=2, use_cache=False
        )
        body = {"scene": "SPRNG", "size": 16}
        results = []

        def fire():
            results.append(_post(base, body))

        threads = [threading.Thread(target=fire) for _ in range(3)]
        try:
            for t in threads:
                t.start()
            deadline = time.monotonic() + 5
            while len(executions) == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            # All three requests are in flight against ONE execution.
            time.sleep(0.2)
        finally:
            gate.set()
        for t in threads:
            t.join(10)
        assert len(executions) == 1
        statuses = sorted(status for status, _, _ in results)
        assert statuses == [200, 200, 200]
        assert all(p["metrics"] == {"cycles": 16.0} for _, p, _ in results)
        coalesced = sorted(p["coalesced"] for _, p, _ in results)
        assert coalesced == [False, True, True]
        assert service.stats.coalesced == 2

    def test_cache_hit_and_miss_accounting(self, service_factory):
        service, base = service_factory(executor_fn=_payload_for)
        body = {"scene": "SPRNG", "size": 16}
        status, first, _ = _post(base, body)
        assert (status, first["cached"]) == (200, False)
        status, second, _ = _post(base, body)
        assert (status, second["cached"]) == (200, True)
        assert second["metrics"] == first["metrics"]
        _, metrics = _get(base, "/metrics")
        counters = metrics["counters"]
        assert counters["service.cache_hits"] == 1
        assert counters["service.cache_misses"] == 1
        assert counters["service.predicts"] == 2
        assert counters["service.completed"] == 1
        assert metrics["derived"]["service.cache_hit_rate"] == 0.5

    def test_failed_execution_returns_500_with_error(self, service_factory):
        def broken(spec):
            raise RuntimeError("synthetic failure")

        service, base = service_factory(executor_fn=broken, use_cache=False)
        status, payload, _ = _post(base, {"scene": "SPRNG", "size": 16})
        assert status == 500
        assert "synthetic failure" in payload["error"]
        assert service.stats.failed == 1

    def test_async_submit_and_poll(self, service_factory):
        _, base = service_factory(executor_fn=_payload_for)
        status, ticket, _ = _post(
            base, {"scene": "SPRNG", "size": 16, "wait": False}
        )
        assert status == 202 and ticket["job"]
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            status, job = _get(base, f"/jobs/{ticket['job']}")
            if job["status"] == "done":
                break
            time.sleep(0.05)
        assert job["status"] == "done"
        assert job["result"]["metrics"] == {"cycles": 16.0}

    def test_graceful_shutdown_drains_inflight_jobs(self, tmp_path):
        started = threading.Event()

        def slow(spec):
            started.set()
            time.sleep(0.3)
            return _payload_for(spec)

        service = ZatelService(
            runner=Runner(cache_dir=tmp_path / "cache"), port=0,
            workers=1, queue_capacity=4, executor_fn=slow, use_cache=False,
        )
        thread = threading.Thread(target=service.run, daemon=True)
        thread.start()
        assert service.started.wait(15)
        base = f"http://127.0.0.1:{service.port}"
        status, ticket, _ = _post(
            base, {"scene": "SPRNG", "size": 16, "wait": False}
        )
        assert status == 202
        assert started.wait(5)
        service.shutdown()
        thread.join(30)
        assert not thread.is_alive()
        # The in-flight job finished during drain instead of being dropped.
        job = service.jobs[ticket["job"]]
        assert job.status == "done"
        assert job.result["metrics"] == {"cycles": 16.0}
        assert service.queue.depth == 0

    def test_submissions_after_close_get_503(self, service_factory):
        service, base = service_factory(executor_fn=_payload_for)
        service.queue.close()
        status, payload, _ = _post(base, {"scene": "SPRNG", "size": 16})
        assert status == 503
        assert "shutting down" in payload["error"]


class TestReadiness:
    def test_idle_service_is_ready(self, service_factory):
        _, base = service_factory(executor_fn=_payload_for)
        status, payload = _get(base, "/readyz")
        assert status == 200
        assert payload == {"status": "ready", "reasons": []}

    def test_saturated_queue_is_unready_but_alive(self, service_factory):
        release = threading.Event()

        def blocked(spec):
            release.wait(10)
            return _payload_for(spec)

        service, base = service_factory(
            executor_fn=blocked, queue_capacity=2, use_cache=False
        )
        try:
            for size in (16, 32):
                status, _, _ = _post(
                    base, {"scene": "SPRNG", "size": size, "wait": False}
                )
                assert status == 202
            deadline = time.monotonic() + 5
            while (
                service.queue.depth < service.queue.capacity
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            status, payload = _get(base, "/readyz")
            assert status == 503
            assert payload["status"] == "unavailable"
            assert any(
                reason.startswith("queue_saturated")
                for reason in payload["reasons"]
            )
            # Liveness is a different question: a busy instance must not
            # look restart-worthy to an orchestrator.
            assert _get(base, "/healthz")[1]["status"] == "ok"
        finally:
            release.set()

    def test_closed_queue_reports_shutting_down(self, service_factory):
        service, base = service_factory(executor_fn=_payload_for)
        service.queue.close()
        status, payload = _get(base, "/readyz")
        assert status == 503
        assert any(
            reason.startswith("shutting_down") for reason in payload["reasons"]
        )


class TestShutdownWatchdog:
    def test_drain_deadline_abandons_hung_job(self, tmp_path):
        started = threading.Event()
        release = threading.Event()

        def wedged(spec):
            started.set()
            release.wait(30)
            return _payload_for(spec)

        service = ZatelService(
            runner=Runner(cache_dir=tmp_path / "cache"), port=0,
            workers=1, queue_capacity=4, executor_fn=wedged,
            use_cache=False, drain_timeout=0.3,
        )
        thread = threading.Thread(target=service.run, daemon=True)
        thread.start()
        try:
            assert service.started.wait(15)
            base = f"http://127.0.0.1:{service.port}"
            status, ticket, _ = _post(
                base, {"scene": "SPRNG", "size": 16, "wait": False}
            )
            assert status == 202
            assert started.wait(5)
            # Shutdown with the executor wedged: the drain deadline must
            # abandon the job as failed instead of hanging the process.
            service.shutdown()
            thread.join(30)
            assert not thread.is_alive()
            job = service.jobs[ticket["job"]]
            assert job.status == "failed"
            assert "drain deadline" in job.error
            assert service.stats.abandoned == 1
            assert service.queue.depth == 0
        finally:
            release.set()


# ---------------------------------------------------------------------------
# end to end: the real pipeline through the service
# ---------------------------------------------------------------------------


class TestServiceEndToEnd:
    def test_served_prediction_matches_local_pipeline(self, tmp_path):
        runner = Runner(cache_dir=tmp_path / "cache")
        spec = PredictSpec(scene="SPRNG", size=12)
        local = ServiceRunner(runner).execute(spec)
        service = ZatelService(
            runner=runner, port=0, workers=1, queue_capacity=4
        )
        with service.background():
            base = f"http://127.0.0.1:{service.port}"
            status, served, _ = _post(base, {"scene": "SPRNG", "size": 12})
        assert status == 200
        assert served["metrics"] == local["metrics"]
        assert served["downscale_factor"] == local["downscale_factor"]
        assert served["degraded"] is False
        assert served["serial_fallback"] is False


class TestCampaignEndpoint:
    @staticmethod
    def _post_campaign(base: str, body: dict) -> tuple[int, dict]:
        request = urllib.request.Request(
            f"{base}/campaigns", data=json.dumps(body).encode(), method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    @staticmethod
    def _sheet(points, **campaign):
        defaults = {"name": "svc", "size": 10, "gpus": ["mobile"]}
        defaults.update(campaign)
        return {"campaign": defaults, "points": points}

    def test_campaign_runs_and_counters_surface(self, service_factory):
        service, base = service_factory()
        sheet = self._sheet(
            [
                {
                    "scene": {
                        "sequence": "saturation",
                        "frames": 2,
                        "knobs": {"level": 0.3},
                        "seed": 1,
                        "orbit_degrees": 8.0,
                    }
                }
            ]
        )
        status, report = self._post_campaign(base, sheet)
        assert status == 200
        assert report["campaign"] == "svc"
        assert report["succeeded"] is True
        assert len(report["points"]) == 2
        assert all(p["verdict"] == "pass" for p in report["points"])

        _, metrics = _get(base, "/metrics")
        counters = metrics["counters"]
        assert counters["service.campaigns"] == 1
        assert counters["service.campaign_points"] == 2
        assert counters["service.seq_cache_lookups"] > 0

    def test_invalid_samplesheet_is_400(self, service_factory):
        service, base = service_factory()
        status, body = self._post_campaign(
            base, self._sheet([{"scene": "SPRNG", "gppu": "x"}])
        )
        assert status == 400
        assert "points[0]" in body["error"]

    def test_async_submit_then_poll_campaign(self, service_factory):
        service, base = service_factory()
        sheet = self._sheet([{"scene": "SPRNG", "size": 8}])
        status, body = self._post_campaign(base, {**sheet, "wait": False})
        assert status == 202
        job_id = body["job"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status, job = _get(base, f"/campaigns/{job_id}")
            if job["status"] == "done":
                break
            time.sleep(0.05)
        assert job["status"] == "done"
        assert job["result"]["succeeded"] is True


class TestCliErrorMapping:
    def test_unreachable_remote_is_execution_error_not_traceback(self):
        from repro.cli.main import main

        # Port 9 (discard) refuses connections; the CLI must map the
        # client error to the execution-failure exit code, not crash.
        code = main(
            ["predict", "SPRNG", "--size", "16",
             "--remote", "http://127.0.0.1:9"]
        )
        assert code == 3

    def test_remote_rejects_local_only_flags(self):
        from repro.cli.main import main

        code = main(
            ["predict", "SPRNG", "--size", "16",
             "--remote", "http://127.0.0.1:9", "--compare"]
        )
        assert code == 2
