"""Regenerate golden_predict.json from the current pipeline.

Run only after an *intentional* model change, and say so in the commit:

    PYTHONPATH=src python tests/data/regen_golden_predict.py
"""

import json
from pathlib import Path

from repro.core.pipeline import Zatel
from repro.gpu.config import MOBILE_SOC
from repro.scene.library import SCENE_NAMES, make_scene
from repro.tracer.tracer import FunctionalTracer, RenderSettings

META = {"size": 24, "spp": 1, "seed": 0, "backend": "packet",
        "gpu": "MobileSoC"}


def main() -> None:
    metrics = {}
    for scene_name in SCENE_NAMES:
        scene = make_scene(scene_name)
        frame = FunctionalTracer(
            scene,
            RenderSettings(
                width=META["size"], height=META["size"],
                samples_per_pixel=META["spp"], seed=META["seed"],
                tracing_backend=META["backend"],
            ),
        ).trace_frame()
        result = Zatel(MOBILE_SOC).predict(scene, frame)
        metrics[scene_name] = dict(result.metrics)
        print(f"{scene_name}: cycles={result.metrics['cycles']}")
    out = Path(__file__).parent / "golden_predict.json"
    out.write_text(
        json.dumps({"meta": META, "metrics": metrics}, indent=2,
                   sort_keys=True)
        + "\n"
    )
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
