"""Tests for the stage graph: fingerprints, the artifact store, and
behaviour preservation of the refactored pipeline (golden values)."""

import pickle

import pytest

from repro.core import Zatel, ZatelConfig
from repro.core.stages import (
    ArtifactStore,
    StageContext,
    StageCounters,
    stable_hash,
)
from repro.core.stages.concrete import ProfileStage, QuantizeStage
from repro.core.stages.fingerprint import gpu_fingerprint
from repro.gpu import MOBILE_SOC
from repro.models import SamplingPredictor


class TestStableHash:
    def test_deterministic(self):
        value = {"a": [1, 2.5, "x"], "b": (None, True)}
        assert stable_hash(value) == stable_hash(value)

    def test_dict_order_invariant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_distinguishes_values_and_types(self):
        keys = {
            stable_hash(1),
            stable_hash(1.0),
            stable_hash("1"),
            stable_hash(True),
            stable_hash((1,)),
        }
        assert len(keys) == 5
        # Tuples and lists are both just sequences to the fingerprint.
        assert stable_hash([1]) == stable_hash((1,))

    def test_rejects_arbitrary_objects(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            stable_hash(Opaque())

    def test_hashes_dataclasses_by_field(self):
        assert gpu_fingerprint(MOBILE_SOC) == gpu_fingerprint(MOBILE_SOC)
        from dataclasses import replace

        edited = replace(MOBILE_SOC, num_sms=MOBILE_SOC.num_sms + 1)
        assert gpu_fingerprint(edited) != gpu_fingerprint(MOBILE_SOC)


class TestArtifactStore:
    def test_memory_only_roundtrip(self):
        store = ArtifactStore()
        store.put("k1", {"x": 1})
        assert store.get("k1") == {"x": 1}
        assert store.get("absent", default="d") == "d"
        with pytest.raises(ValueError):
            store.path_for("k1")

    def test_disk_roundtrip_and_layout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("abcdef", [1, 2, 3])
        path = store.path_for("abcdef")
        assert path == tmp_path / "objects" / "ab" / "abcdef.pkl"
        assert path.exists()
        fresh = ArtifactStore(tmp_path)
        assert fresh.get("abcdef") == [1, 2, 3]
        assert fresh.stats.disk_hits == 1

    def test_persist_false_stays_in_memory(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("k", "v", persist=False)
        assert store.get("k") == "v"
        assert not store.path_for("k").exists()
        assert ArtifactStore(tmp_path).get("k") is None

    def test_no_temp_files_left(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for i in range(5):
            store.put(f"key{i}", i)
        assert not [p for p in tmp_path.rglob("*") if ".tmp" in p.name]

    def test_corrupt_entry_recovers(self, tmp_path, caplog):
        store = ArtifactStore(tmp_path)
        store.put("deadbeef", "good")
        store.path_for("deadbeef").write_bytes(b"garbage")
        fresh = ArtifactStore(tmp_path)
        with caplog.at_level("WARNING", logger="repro.stages"):
            assert fresh.get("deadbeef") is None
        assert "corrupt cache file" in caplog.text
        assert fresh.stats.corrupt == 1
        assert not fresh.path_for("deadbeef").exists()

    def test_get_or_compute_computes_once(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []
        for _ in range(3):
            value = store.get_or_compute("k", lambda: calls.append(1) or 42)
        assert value == 42
        assert len(calls) == 1

    def test_forget_drops_memory_and_disk(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("k", 7)
        store.forget("k")
        assert store.get("k") is None
        assert not store.path_for("k").exists()


class TestFingerprintStability:
    """Same inputs → same key; any methodology change → different key."""

    def _terminal_key(self, scene, frame, config=None):
        graph, terminal = Zatel(MOBILE_SOC, config).build_graph(scene, frame)
        return terminal.fingerprint_static()

    def test_same_inputs_same_key(self, small_scene, small_frame):
        first = self._terminal_key(small_scene, small_frame)
        second = self._terminal_key(small_scene, small_frame)
        assert first == second

    def test_changed_seed_changes_key(self, small_scene, small_frame):
        base = self._terminal_key(small_scene, small_frame)
        reseeded = self._terminal_key(
            small_scene, small_frame, ZatelConfig(seed=1)
        )
        assert base != reseeded

    def test_changed_config_changes_key(self, small_scene, small_frame):
        keys = {
            self._terminal_key(small_scene, small_frame),
            self._terminal_key(
                small_scene, small_frame, ZatelConfig(division="coarse")
            ),
            self._terminal_key(
                small_scene, small_frame, ZatelConfig(distribution="exptmp")
            ),
            self._terminal_key(
                small_scene, small_frame, ZatelConfig(fraction_override=0.5)
            ),
        }
        assert len(keys) == 4

    def test_changed_code_version_changes_key(
        self, small_scene, small_frame, monkeypatch
    ):
        base = self._terminal_key(small_scene, small_frame)
        monkeypatch.setattr(ProfileStage, "code_version", "999-test")
        assert self._terminal_key(small_scene, small_frame) != base

    def test_profile_shared_between_zatel_and_sampling(
        self, small_scene, small_frame
    ):
        """With coinciding knobs, the Zatel pipeline and the sampling
        baseline address the *same* profile/quantize artifacts — the
        property sweep dedup relies on."""
        zatel_graph, _ = Zatel(MOBILE_SOC).build_graph(small_scene, small_frame)
        samp_graph, _ = SamplingPredictor(MOBILE_SOC).build_graph(
            small_scene, small_frame, 0.3
        )

        def keys_of(graph, stage_type):
            return {
                node.fingerprint_static()
                for node in graph.nodes
                if isinstance(node.stage, stage_type)
            }

        for stage_type in (ProfileStage, QuantizeStage):
            assert keys_of(zatel_graph, stage_type) == keys_of(
                samp_graph, stage_type
            )


class TestStageMemoization:
    def test_second_predict_hits_cache(self, small_scene, small_frame):
        store = ArtifactStore()
        zatel = Zatel(MOBILE_SOC)
        first = zatel.predict(small_scene, small_frame, store=store)
        ctx_counters = StageCounters()
        ctx = StageContext(store=store, counters=ctx_counters)
        graph, terminal = zatel.build_graph(small_scene, small_frame)
        second = graph.resolve(terminal, ctx).value
        assert ctx_counters.total_executions() == 0
        assert ctx_counters.total_hits() > 0
        assert second.metrics == first.metrics

    def test_results_pickle_cleanly(self, small_scene, small_frame, tmp_path):
        """Disk persistence requires every cacheable artifact to survive
        a pickle round-trip."""
        store = ArtifactStore(tmp_path)
        result = Zatel(MOBILE_SOC).predict(small_scene, small_frame, store=store)
        reloaded = ArtifactStore(tmp_path)
        rerun = Zatel(MOBILE_SOC).predict(
            small_scene, small_frame, store=reloaded
        )
        assert rerun.metrics == result.metrics
        assert pickle.loads(pickle.dumps(result)).metrics == result.metrics


class TestGoldenValues:
    """The stage refactor must be behaviour-preserving: these exact
    values were produced by the pre-refactor monolithic ``predict`` on
    the conftest small scene (fixed seeds, exact float equality)."""

    GOLDEN = {
        "default": {
            "ipc": 30.345787632776055,
            "cycles": 2252.9331028116367,
            "l1d_miss_rate": 0.0840694890033136,
            "l2_miss_rate": 0.6215986321751115,
            "rt_efficiency": 10.290954920425117,
            "dram_efficiency": 0.5969254604198608,
            "bw_utilization": 0.38357458919172965,
        },
        "regression": {
            "ipc": 27.613070287335105,
            "cycles": 2851.042593288909,
            "l1d_miss_rate": 0.1709932173250932,
            "l2_miss_rate": 0.6780797229154036,
            "rt_efficiency": 10.477610444850272,
            "dram_efficiency": 0.5563979595785871,
            "bw_utilization": 0.41416661783032316,
        },
        "coarse_exptmp": {
            "ipc": 31.488084850253827,
            "cycles": 1990.8127763426442,
            "l1d_miss_rate": 0.11480566105578138,
            "l2_miss_rate": 0.6896508680726344,
            "rt_efficiency": 11.11483874204399,
            "dram_efficiency": 0.49936040614942145,
            "bw_utilization": 0.3658658573764737,
        },
    }

    def _assert_golden(self, metrics, golden):
        for name, expected in golden.items():
            assert metrics[name] == expected, name

    def test_default_config(self, small_scene, small_frame):
        result = Zatel(MOBILE_SOC).predict(small_scene, small_frame)
        self._assert_golden(result.metrics, self.GOLDEN["default"])

    def test_regression_extrapolation(self, small_scene, small_frame):
        config = ZatelConfig(extrapolation="regression")
        result = Zatel(MOBILE_SOC, config).predict(small_scene, small_frame)
        self._assert_golden(result.metrics, self.GOLDEN["regression"])

    def test_coarse_exptmp_seeded(self, small_scene, small_frame):
        config = ZatelConfig(division="coarse", distribution="exptmp", seed=3)
        result = Zatel(MOBILE_SOC, config).predict(small_scene, small_frame)
        self._assert_golden(result.metrics, self.GOLDEN["coarse_exptmp"])

    def test_sampling_baseline(self, small_scene, small_frame):
        golden = {
            "ipc": 13.624338624338625,
            "cycles": 3780.0,
            "l1d_miss_rate": 0.11632047477744807,
            "l2_miss_rate": 0.4279661016949153,
            "rt_efficiency": 9.16609589041096,
            "dram_efficiency": 0.2961165048543689,
            "bw_utilization": 0.10758377425044091,
        }
        prediction = SamplingPredictor(MOBILE_SOC).predict(
            small_scene, small_frame, 0.30
        )
        self._assert_golden(prediction.metrics, golden)
