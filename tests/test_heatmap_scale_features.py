"""Tests for the heatmap's scale-model features (DESIGN.md §5).

Warp flattening and percentile normalization are the two adjustments that
make functional-trace heatmaps behave like the paper's hardware-profiled
ones; these tests pin their semantics.
"""

import numpy as np
import pytest

from repro.core import Heatmap
from tests.test_heatmap_quantize import synthetic_frame


class TestWarpFlattening:
    def test_flattening_never_cools_a_pixel(self):
        frame = synthetic_frame(width=16, height=4, hot_column=5)
        raw = Heatmap.from_frame(frame, warp_width=0)
        flat = Heatmap.from_frame(frame, warp_width=8)
        # Same normalizer (the hot pixels dominate both), so flattened
        # temperatures dominate raw ones pointwise.
        assert (flat.temperatures >= raw.temperatures - 1e-12).all()

    def test_flattening_respects_warp_boundaries(self):
        frame = synthetic_frame(width=16, height=1, hot_column=3)
        flat = Heatmap.from_frame(frame, warp_width=8)
        # Hot pixel in the first 8-wide run: that run is uniformly hot...
        first_run = flat.temperatures[0, :8]
        assert np.allclose(first_run, first_run[0])
        # ...and the second run stays cold.
        assert flat.temperatures[0, 8] < first_run[0]

    def test_raw_costs_preserved(self):
        frame = synthetic_frame()
        flat = Heatmap.from_frame(frame, warp_width=8)
        assert np.allclose(flat.raw_costs, frame.cost_map())


class TestPercentileNormalization:
    def test_outliers_clamped_to_one(self):
        frame = synthetic_frame(width=32, height=32, hot_column=7, spread=500)
        hm = Heatmap.from_frame(frame, percentile=90.0, warp_width=0)
        # The hot column exceeds the 90th percentile: clamped to 1.0.
        assert hm.temperature_at(7, 0) == pytest.approx(1.0)
        assert hm.temperatures.max() <= 1.0

    def test_full_percentile_matches_max_normalization(self):
        frame = synthetic_frame()
        hm = Heatmap.from_frame(frame, percentile=100.0, warp_width=0)
        costs = frame.cost_map()
        assert np.allclose(hm.temperatures, costs / costs.max())

    def test_lower_percentile_warms_the_map(self):
        frame = synthetic_frame(width=32, height=32, spread=200)
        strict = Heatmap.from_frame(frame, percentile=100.0, warp_width=0)
        relaxed = Heatmap.from_frame(frame, percentile=95.0, warp_width=0)
        assert relaxed.mean_temperature() >= strict.mean_temperature()
