"""Unit tests for the packet (wavefront) BVH backend.

Golden scalar-vs-packet *frame* equivalence lives in
``test_wavefront_golden.py``; this module exercises the kernels and the
path-prediction cache directly, plus the scalar backend's negative-zero
direction regression.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.scene.bvh import TraversalRecord
from repro.scene.bvh_packet import PackedBVH, PathPredictionCache
from repro.scene.geometry import Ray
from repro.scene.vecmath import normalize, vec3


@pytest.fixture(scope="module")
def packed(small_scene) -> PackedBVH:
    return small_scene.packed_bvh


def _scatter_rays(scene, count=64, seed=7):
    """Deterministic rays aimed at (and past) the scene from many angles."""
    rng = np.random.default_rng(seed)
    lo = scene.bvh.nodes[0].bounds.lo
    hi = scene.bvh.nodes[0].bounds.hi
    center = (lo + hi) / 2.0
    rays = []
    for _ in range(count):
        origin = center + rng.uniform(-6.0, 6.0, 3)
        target = rng.uniform(lo, hi)
        direction = target - origin
        if np.any(direction == 0.0):
            direction = direction + 1e-5
        rays.append(Ray(origin=origin, direction=normalize(direction)))
    return rays


class TestPacketKernels:
    def test_intersect_matches_scalar(self, small_scene, packed):
        rays = _scatter_rays(small_scene)
        res = packed.intersect_batch(rays, want_records=True)
        for i, ray in enumerate(rays):
            record = TraversalRecord()
            hit = small_scene.bvh.intersect(ray, record)
            if hit is None:
                assert res.tri[i] == -1
            else:
                assert res.tri[i] == hit.primitive_index
                assert res.t[i] == hit.t  # bit-identical, not approx
            assert res.nodes[i] == record.nodes_visited
            assert res.tris[i] == record.tris_tested

    def test_occluded_matches_scalar(self, small_scene, packed):
        rays = _scatter_rays(small_scene, seed=11)
        res = packed.occluded_batch(rays, want_records=True)
        for i, ray in enumerate(rays):
            record = TraversalRecord()
            occluded = small_scene.bvh.occluded(ray, record)
            assert bool(res.occluded[i]) == occluded
            assert res.nodes[i] == record.nodes_visited
            assert res.tris[i] == record.tris_tested

    def test_zero_direction_component_delegates(self, small_scene, packed):
        # Axis-parallel rays (zero direction components) take the scalar
        # fallback; results must still agree with the scalar backend.
        rays = [
            Ray(origin=vec3(0.0, 10.0, 0.0), direction=vec3(0.0, -1.0, 0.0)),
            Ray(origin=vec3(0.0, 0.5, 5.0), direction=vec3(0.0, 0.0, -1.0)),
            Ray(origin=vec3(-5.0, 0.5, 0.0), direction=normalize(vec3(1.0, 0.0, 0.3))),
        ]
        res = packed.intersect_batch(rays, want_records=True)
        for i, ray in enumerate(rays):
            record = TraversalRecord()
            hit = small_scene.bvh.intersect(ray, record)
            assert (res.tri[i] == -1) == (hit is None)
            assert res.nodes[i] == record.nodes_visited

    def test_mixed_batch_preserves_order(self, small_scene, packed):
        # A batch mixing scalar-fallback and packet rays keeps per-ray
        # results aligned with their input positions.
        rays = _scatter_rays(small_scene, count=10, seed=3)
        rays.insert(4, Ray(origin=vec3(0.0, 10.0, 0.0), direction=vec3(0.0, -1.0, 0.0)))
        res = packed.intersect_batch(rays, want_records=True)
        for i, ray in enumerate(rays):
            record = TraversalRecord()
            hit = small_scene.bvh.intersect(ray, record)
            assert (res.tri[i] == -1) == (hit is None)
            assert res.nodes[i] == record.nodes_visited
            assert res.tris[i] == record.tris_tested

    def test_cache_with_records_rejected(self, packed):
        cache = PathPredictionCache(packed)
        with pytest.raises(ValueError):
            packed.occluded_batch(
                [Ray(origin=vec3(0, 1, 4), direction=normalize(vec3(0.1, 0.2, -1)))],
                want_records=True,
                cache=cache,
            )


class TestNegativeZeroDirection:
    """Regression: ``-0.0`` direction components must behave like ``+0.0``.

    ``1.0 / -0.0`` is ``-inf``; before the ``copysign`` guard the slab
    test's ``0 * -inf`` produced NaNs that silently disabled node culling
    or, worse, culled nodes the ray actually enters.
    """

    def test_scalar_intersect_negative_zero(self, small_scene):
        down_pos = Ray(origin=vec3(0.3, 10.0, 0.1), direction=vec3(0.0, -1.0, 0.0))
        down_neg = Ray(origin=vec3(0.3, 10.0, 0.1), direction=vec3(-0.0, -1.0, -0.0))
        rec_pos, rec_neg = TraversalRecord(), TraversalRecord()
        hit_pos = small_scene.bvh.intersect(down_pos, rec_pos)
        hit_neg = small_scene.bvh.intersect(down_neg, rec_neg)
        assert hit_pos is not None and hit_neg is not None
        assert hit_neg.t == hit_pos.t
        assert hit_neg.primitive_index == hit_pos.primitive_index
        assert rec_neg.nodes_visited == rec_pos.nodes_visited
        assert rec_neg.tris_tested == rec_pos.tris_tested

    def test_scalar_occluded_negative_zero(self, small_scene):
        pos = Ray(origin=vec3(0.3, 10.0, 0.1), direction=vec3(0.0, -1.0, 0.0),
                  t_min=1e-4, t_max=math.inf)
        neg = Ray(origin=vec3(0.3, 10.0, 0.1), direction=vec3(-0.0, -1.0, -0.0),
                  t_min=1e-4, t_max=math.inf)
        assert small_scene.bvh.occluded(pos) == small_scene.bvh.occluded(neg)
        assert small_scene.bvh.occluded(pos)  # the ground plane is below

    def test_packet_negative_zero_delegates(self, small_scene, packed):
        ray = Ray(origin=vec3(0.3, 10.0, 0.1), direction=vec3(-0.0, -1.0, -0.0))
        res = packed.intersect_batch([ray], want_records=True)
        record = TraversalRecord()
        hit = small_scene.bvh.intersect(ray, record)
        assert hit is not None and res.tri[0] == hit.primitive_index
        assert res.nodes[0] == record.nodes_visited


class TestPathPredictionCache:
    def test_learns_and_validates(self, small_scene, packed):
        cache = PathPredictionCache(packed)
        # Occluded shadow rays: from under the light toward the sphere.
        rays = []
        for dx in np.linspace(-0.05, 0.05, 16):
            rays.append(
                Ray(
                    origin=vec3(-0.8 + float(dx), -0.5, 0.0),
                    direction=vec3(0.0, 1.0, 0.0),
                    t_min=1e-4,
                )
            )
        # Perturb directions slightly off-axis to stay on the packet path.
        rays = [
            Ray(origin=r.origin, direction=normalize(vec3(1e-6, 1.0, 1e-6)),
                t_min=r.t_min)
            for r in rays
        ]
        first = packed.occluded_batch(rays, want_records=False, cache=cache)
        assert first.occluded.all()
        assert cache.hits == 0 and len(cache.table) > 0
        # Second identical batch: every ray should be answered by a
        # validated prediction, with identical results.
        second = packed.occluded_batch(rays, want_records=False, cache=cache)
        assert np.array_equal(first.occluded, second.occluded)
        # Quantization may fold several rays onto one key, so not every
        # ray is guaranteed a validated hit — but some must be.
        assert cache.hits > 0
        assert cache.hit_rate > 0.0

    def test_miss_unlearns(self, packed):
        cache = PathPredictionCache(packed)
        up = [Ray(origin=vec3(0.0, 20.0, 0.0),
                  direction=normalize(vec3(1e-6, 1.0, 1e-6)), t_min=1e-4)]
        packed.occluded_batch(up, want_records=False, cache=cache)
        # An unoccluded ray never populates (or evicts) its key.
        keys = cache.keys(
            np.array([up[0].origin]), np.array([up[0].direction])
        )
        assert int(keys[0]) not in cache.table

    def test_capacity_clears(self, packed):
        cache = PathPredictionCache(packed, max_entries=2)
        cache.table = {1: 0, 2: 0}
        cache.train(
            np.array([3], dtype=np.int64),
            np.array([True]),
            np.array([0], dtype=np.int64),
        )
        assert cache.table == {3: 0}

    def test_image_identical_with_cache(self, small_scene):
        # render_image (cache on) must match scalar exactly.
        from repro.tracer.tracer import FunctionalTracer, RenderSettings

        img_pk = FunctionalTracer(
            small_scene,
            RenderSettings(width=16, height=16, tracing_backend="packet"),
        ).render_image()
        img_sc = FunctionalTracer(
            small_scene,
            RenderSettings(width=16, height=16, tracing_backend="scalar"),
        ).render_image()
        assert np.array_equal(img_pk, img_sc)
