"""Tests for the distributed prediction fleet (:mod:`repro.fleet`).

Unit tests cover the protocol framing and lease state machine; the
integration tests run a real coordinator with in-process thread workers
(chaos kills drop the connection — the same EOF a dead process leaves)
over a shared on-disk artifact store, on tiny SPRNG planes.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.stages.requests import PredictSpec
from repro.core.stages.store import ArtifactStore
from repro.errors import DegradedResultError
from repro.fleet import (
    FleetCoordinator,
    FleetPolicy,
    FleetWorker,
    LeaseTable,
    MessageChannel,
    ProtocolError,
    make_result_validator,
    result_key_for,
)
from repro.harness.runner import Runner
from repro.harness.service import ServiceRunner
from repro.testing.chaos import (
    ChaosPlan,
    corrupt_result,
    hang_worker,
    kill_worker,
    slow_worker,
)
from repro.testing.faults import ALWAYS

# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


@pytest.fixture()
def channel_pair():
    left_sock, right_sock = socket.socketpair()
    left, right = MessageChannel(left_sock), MessageChannel(right_sock)
    yield left, right
    left.close()
    right.close()


class TestMessageChannel:
    def test_round_trip(self, channel_pair):
        left, right = channel_pair
        left.send({"type": "hello", "worker": "w0"})
        assert right.recv(timeout=2.0) == {"type": "hello", "worker": "w0"}

    def test_timeout_then_successful_recv(self, channel_pair):
        # Regression: a buffered file reader would poison itself after
        # one timeout; the hand-rolled buffer must keep working.
        left, right = channel_pair
        with pytest.raises(socket.timeout):
            right.recv(timeout=0.05)
        left.send({"type": "heartbeat"})
        assert right.recv(timeout=2.0) == {"type": "heartbeat"}

    def test_eof_returns_none(self, channel_pair):
        left, right = channel_pair
        left.close()
        assert right.recv(timeout=2.0) is None

    def test_malformed_json_raises(self, channel_pair):
        left, right = channel_pair
        left.sock.sendall(b"{broken\n")
        with pytest.raises(ProtocolError, match="malformed"):
            right.recv(timeout=2.0)

    def test_non_object_message_raises(self, channel_pair):
        left, right = channel_pair
        left.sock.sendall(b"[1, 2, 3]\n")
        with pytest.raises(ProtocolError, match="'type'"):
            right.recv(timeout=2.0)

    def test_oversized_line_raises(self, channel_pair):
        from repro.fleet import MAX_LINE_BYTES

        left, right = channel_pair

        def flood():
            try:
                left.sock.sendall(b"x" * (MAX_LINE_BYTES + 2))
            except OSError:
                pass

        sender = threading.Thread(target=flood, daemon=True)
        sender.start()
        with pytest.raises(ProtocolError, match="exceeds"):
            right.recv(timeout=5.0)
        sender.join(5.0)


# ---------------------------------------------------------------------------
# policy + lease table
# ---------------------------------------------------------------------------


class TestFleetPolicy:
    def test_grace_must_exceed_interval(self):
        with pytest.raises(ValueError, match="heartbeat_grace"):
            FleetPolicy(heartbeat_interval=1.0, heartbeat_grace=0.5)

    def test_backoff_is_deterministic_and_capped(self):
        policy = FleetPolicy(backoff_base=0.05, backoff_cap=0.4, seed=7)
        delays = [policy.backoff_delay(3, attempt) for attempt in range(1, 8)]
        assert delays == [policy.backoff_delay(3, a) for a in range(1, 8)]
        assert all(delay <= 0.4 for delay in delays)
        assert delays[0] < delays[-1]  # grows before hitting the cap

    def test_backoff_differs_across_groups(self):
        policy = FleetPolicy()
        assert policy.backoff_delay(0, 1) != policy.backoff_delay(1, 1)


class TestLeaseTable:
    def make(self, max_dispatches=3):
        policy = FleetPolicy(max_dispatches=max_dispatches, backoff_base=0.1)
        return LeaseTable(policy)

    def test_lifecycle_to_done(self):
        table = self.make()
        lease = table.add("J1", "bundle", 0)
        assert lease.state == "pending" and not lease.terminal
        table.assign(lease, "w0", now=100.0)
        assert lease.state == "assigned"
        assert lease.dispatches == 1
        assert lease.deadline == 100.0 + table.policy.lease_timeout
        table.complete(lease, "key0")
        assert lease.terminal and lease.result_key == "key0"

    def test_release_requeues_with_backoff_until_exhausted(self):
        table = self.make(max_dispatches=2)
        lease = table.add("J1", "bundle", 0)
        table.assign(lease, "w0", now=0.0)
        assert table.release(lease, now=0.0, error="X", message="boom") is True
        assert lease.state == "pending"
        assert lease.not_before > 0.0  # backoff applied
        assert not table.ready(now=0.0)  # not dispatchable yet
        assert table.ready(now=lease.not_before + 1.0) == [lease]
        table.assign(lease, "w1", now=1.0)
        assert table.release(lease, now=1.0, error="X", message="boom") is False
        assert lease.state == "failed" and lease.terminal

    def test_expired_finds_overdue_assignments(self):
        table = self.make()
        lease = table.add("J1", "bundle", 0)
        table.assign(lease, "w0", now=0.0)
        assert table.expired(now=table.policy.lease_timeout - 1.0) == []
        assert table.expired(now=table.policy.lease_timeout + 1.0) == [lease]

    def test_failure_record_carries_audit_fields(self):
        table = self.make(max_dispatches=1)
        lease = table.add("J1", "bundle", 5)
        table.assign(lease, "w0", now=0.0)
        table.release(lease, now=0.0, error="WorkerCrashError", message="died")
        record = table.failure_record(lease)
        assert record.index == 5
        assert record.error == "WorkerCrashError"
        assert record.attempts == 1

    def test_forget_job_drops_only_that_job(self):
        table = self.make()
        keep = table.add("J1", "bundle", 0)
        table.add("J2", "bundle", 0)
        table.forget_job("J2")
        assert list(table.leases.values()) == [keep]


# ---------------------------------------------------------------------------
# coordinator + workers (integration)
# ---------------------------------------------------------------------------

FAST = dict(
    lease_timeout=3.0,
    heartbeat_interval=0.1,
    heartbeat_grace=0.8,
    backoff_base=0.01,
    backoff_cap=0.05,
    no_worker_grace=2.0,
    min_workers=1,
)


class FleetHarness:
    """One coordinator + N in-process thread workers over a tmp store."""

    def __init__(self, tmp_path, workers=2, chaos=None, policy=None, validate=True):
        self.runner = Runner(cache_dir=tmp_path / "cache")
        self.coordinator = FleetCoordinator(
            policy=policy or FleetPolicy(**FAST),
            result_validator=(
                make_result_validator(self.runner.store) if validate else None
            ),
        ).start()
        self.workers: list[FleetWorker] = []
        self.threads: list[threading.Thread] = []
        for index in range(workers):
            self.add_worker(f"t{index}", chaos)
        deadline = time.monotonic() + 5.0
        while (
            self.coordinator.live_workers() < workers
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)

    def add_worker(self, worker_id, chaos=None):
        worker = FleetWorker(
            "127.0.0.1",
            self.coordinator.port,
            ArtifactStore(self.runner.cache_dir),
            worker_id=worker_id,
            chaos=chaos,
            in_process=True,
        )
        worker.connect()
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        self.workers.append(worker)
        self.threads.append(thread)
        return worker

    def execute(self, spec):
        return ServiceRunner(self.runner, fleet=self.coordinator).execute(spec)

    def close(self):
        self.coordinator.close()


@pytest.fixture()
def harness_factory(tmp_path):
    harnesses = []

    def build(**kwargs):
        harness = FleetHarness(tmp_path, **kwargs)
        harnesses.append(harness)
        return harness

    yield build
    for harness in harnesses:
        harness.close()


SPEC = PredictSpec(scene="SPRNG", size=16)


def _strip_timing(payload):
    clean = dict(payload)
    clean.pop("host_seconds", None)
    clean.pop("stages", None)
    return clean


class TestFleetExecution:
    def test_no_faults_matches_local_prediction_exactly(
        self, harness_factory, tmp_path
    ):
        local = ServiceRunner(Runner(cache_dir=tmp_path / "local")).execute(SPEC)
        harness = harness_factory(workers=2)
        served = harness.execute(SPEC)
        assert _strip_timing(served) == _strip_timing(local)
        assert not served["degraded"]
        stats = harness.coordinator.stats
        assert stats.leases_completed == stats.leases_dispatched
        assert stats.redispatches == 0

    def test_killed_worker_fails_over_to_survivor(self, harness_factory, tmp_path):
        local = ServiceRunner(Runner(cache_dir=tmp_path / "local")).execute(SPEC)
        harness = harness_factory(
            workers=2, chaos=ChaosPlan([kill_worker(1, attempts=1)])
        )
        served = harness.execute(SPEC)
        # The re-dispatched group recomputes bit-identically: failover is
        # invisible in the result, visible in the stats.
        assert _strip_timing(served) == _strip_timing(local)
        stats = harness.coordinator.stats
        assert stats.workers_lost >= 1
        assert stats.redispatches >= 1

    def test_hung_worker_is_declared_dead_and_lease_requeues(
        self, harness_factory
    ):
        chaos = ChaosPlan([hang_worker(0, attempts=1)], hang_seconds=5.0)
        harness = harness_factory(workers=2, chaos=chaos)
        served = harness.execute(SPEC)
        assert not served["degraded"]
        assert harness.coordinator.stats.workers_lost >= 1
        assert harness.coordinator.stats.redispatches >= 1

    def test_slow_worker_still_correct(self, harness_factory, tmp_path):
        local = ServiceRunner(Runner(cache_dir=tmp_path / "local")).execute(SPEC)
        chaos = ChaosPlan(
            [slow_worker(0, attempts=ALWAYS)], slow_seconds=0.05
        )
        harness = harness_factory(workers=2, chaos=chaos)
        served = harness.execute(SPEC)
        assert _strip_timing(served) == _strip_timing(local)

    def test_corrupt_results_degrade_with_quorum_like_local_failures(
        self, harness_factory
    ):
        # One group's result is tampered on every dispatch: validation
        # rejects it each time, the lease exhausts its dispatch budget,
        # and the combine renormalizes over survivors — PR-1 semantics.
        chaos = ChaosPlan([corrupt_result(0, attempts=ALWAYS)])
        harness = harness_factory(workers=2, chaos=chaos)
        served = harness.execute(SPEC)
        assert served["degraded"]
        assert 0.0 < served["coverage"] < 1.0
        assert [f["group"] for f in served["failures"]] == [0]
        failure = served["failures"][0]
        assert failure["attempts"] == harness.coordinator.policy.max_dispatches
        assert failure["pixel_count"] > 0
        assert harness.coordinator.stats.results_corrupt >= 1

    def test_every_group_corrupt_raises_quorum_violation(self, harness_factory):
        specs = [
            corrupt_result(group, attempts=ALWAYS) for group in range(16)
        ]
        harness = harness_factory(workers=2, chaos=ChaosPlan(specs))
        with pytest.raises(DegradedResultError, match="quorum"):
            harness.execute(SPEC)

    def test_circuit_breaker_ejects_repeat_offender(self, harness_factory):
        # Worker t0 corrupts everything it touches; after breaker_failures
        # consecutive rejections it must be ejected, letting t1 finish.
        # The dispatch budget exceeds the breaker threshold so no lease
        # can exhaust itself on t0 before the breaker opens.
        specs = [
            corrupt_result(group, attempts=ALWAYS, worker="t0")
            for group in range(16)
        ]
        harness = harness_factory(
            workers=2,
            chaos=ChaosPlan(specs),
            policy=FleetPolicy(**{**FAST, "breaker_failures": 2, "max_dispatches": 4}),
        )
        served = harness.execute(SPEC)
        assert not served["degraded"]
        assert harness.coordinator.stats.workers_ejected == 1

    def test_dead_fleet_fails_pending_leases_fast(self, tmp_path):
        policy = FleetPolicy(**{**FAST, "no_worker_grace": 0.2})
        coordinator = FleetCoordinator(policy=policy).start()
        try:
            start = time.monotonic()
            report = coordinator.scatter("bundle", 3, timeout=10.0)
            elapsed = time.monotonic() - start
            assert elapsed < 5.0  # failed fast, not wedged to the timeout
            assert len(report.failures) == 3
            assert all(
                record.error == "WorkerCrashError" for record in report.failures
            )
        finally:
            coordinator.close()

    def test_scatter_refused_while_draining(self, harness_factory):
        harness = harness_factory(workers=1)
        harness.coordinator.drain(timeout=2.0)
        with pytest.raises(RuntimeError, match="not accepting"):
            harness.coordinator.scatter("bundle", 1)

    def test_worker_sigterm_drain_says_goodbye(self, harness_factory):
        harness = harness_factory(workers=2)
        harness.workers[0].request_drain()
        deadline = time.monotonic() + 5.0
        while (
            harness.coordinator.stats.workers_drained < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert harness.coordinator.stats.workers_drained == 1
        assert harness.coordinator.live_workers() == 1
        # The fleet keeps serving with the survivor.
        served = harness.execute(SPEC)
        assert not served["degraded"]

    def test_duplicate_worker_id_rejected(self, harness_factory):
        harness = harness_factory(workers=1)
        clone = FleetWorker(
            "127.0.0.1",
            harness.coordinator.port,
            ArtifactStore(harness.runner.cache_dir),
            worker_id="t0",
            in_process=True,
        )
        with pytest.raises(RuntimeError, match="rejected|closed"):
            clone.connect()
            # The coordinator closes the duplicate without a welcome.
        assert harness.coordinator.live_workers() == 1

    def test_fleet_view_reports_workers_and_leases(self, harness_factory):
        harness = harness_factory(workers=2)
        view = harness.coordinator.fleet_view()
        assert view["live_workers"] == 2
        assert view["quorum"] == 1
        assert {w["id"] for w in view["workers"]} == {"t0", "t1"}
        assert view["leases"] == {"active": 0, "pending": 0, "assigned": 0}

    def test_below_quorum_when_workers_die(self, tmp_path):
        harness = FleetHarness(
            tmp_path, workers=1,
            policy=FleetPolicy(**{**FAST, "min_workers": 2}),
        )
        try:
            assert harness.coordinator.below_quorum()  # 1 live < quorum 2
            harness.add_worker("t9")
            assert not harness.coordinator.below_quorum()
        finally:
            harness.close()


class TestFleetService:
    """The HTTP service fronting a fleet: observability + quorum gating."""

    def test_service_scatters_and_exposes_fleet_state(self, tmp_path):
        import json
        import urllib.error
        import urllib.request

        from repro.service import ZatelService

        harness = FleetHarness(
            tmp_path, workers=2, chaos=ChaosPlan([kill_worker(1, attempts=1)])
        )
        service = ZatelService(
            runner=harness.runner, port=0, workers=1, queue_capacity=4,
            fleet=harness.coordinator, use_cache=False,
        )

        def get(path):
            url = f"http://127.0.0.1:{service.port}{path}"
            try:
                with urllib.request.urlopen(url, timeout=30) as response:
                    return response.status, json.loads(response.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        try:
            with service.background():
                body = json.dumps({"scene": "SPRNG", "size": 16}).encode()
                request = urllib.request.Request(
                    f"http://127.0.0.1:{service.port}/predict",
                    data=body, method="POST",
                )
                with urllib.request.urlopen(request, timeout=60) as response:
                    served = json.loads(response.read())
                # The chaos kill was absorbed: the prediction is intact
                # and the coordinator kept the service alive throughout.
                assert not served["degraded"]

                status, health = get("/healthz")
                assert status == 200 and health["status"] == "ok"
                assert health["fleet"]["quorum"] == 1
                assert {w["id"] for w in health["fleet"]["workers"]} == {
                    "t0", "t1"
                }

                status, ready = get("/readyz")
                assert status == 200, ready  # survivor keeps quorum

                status, metrics = get("/metrics")
                assert status == 200
                assert metrics["counters"]["fleet.redispatches"] >= 1
                assert metrics["counters"]["fleet.workers_lost"] >= 1
                assert metrics["fleet"]["live_workers"] == 1
        finally:
            harness.close()

    def test_readyz_503_when_fleet_below_quorum(self, tmp_path):
        import json
        import urllib.error
        import urllib.request

        from repro.service import ZatelService

        harness = FleetHarness(
            tmp_path, workers=1,
            policy=FleetPolicy(**{**FAST, "min_workers": 2}),
        )
        service = ZatelService(
            runner=harness.runner, port=0, workers=1, queue_capacity=4,
            fleet=harness.coordinator, use_cache=False,
        )
        try:
            with service.background():
                url = f"http://127.0.0.1:{service.port}/readyz"
                try:
                    with urllib.request.urlopen(url, timeout=30) as response:
                        status, payload = response.status, json.loads(
                            response.read()
                        )
                except urllib.error.HTTPError as error:
                    status, payload = error.code, json.loads(error.read())
                assert status == 503
                assert any(
                    reason.startswith("fleet_below_quorum")
                    for reason in payload["reasons"]
                )
        finally:
            harness.close()


class TestResultValidator:
    def test_rejects_missing_and_wrong_shape(self, tmp_path):
        store = ArtifactStore(tmp_path)
        validate = make_result_validator(store)

        class FakeLease:
            bundle_key = "bundle"
            index = 0
            result_key = result_key_for("bundle", 0)

        lease = FakeLease()
        assert "missing" in validate(lease)
        store.put(lease.result_key, {"chaos": "tampered"})
        problem = validate(lease)
        assert "not a GroupPrediction" in problem
        # The rejected artifact was purged so the re-dispatch starts clean.
        assert store.get(lease.result_key) is None

    def test_rejects_mismatched_key(self, tmp_path):
        validate = make_result_validator(ArtifactStore(tmp_path))

        class FakeLease:
            bundle_key = "bundle"
            index = 1
            result_key = "somewhere_else"

        assert "expected" in validate(FakeLease())
