"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_runner(tmp_path, monkeypatch):
    """Point the shared runner's cache at a temp dir so CLI tests don't
    write into the repo cache (scenes stay process-cached regardless)."""
    import repro.harness.runner as runner_module

    fresh = runner_module.Runner(cache_dir=tmp_path)
    monkeypatch.setattr(runner_module, "_shared", fresh)
    yield


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "scenes", "configs", "render", "heatmap", "simulate",
            "predict", "sweep", "campaign",
        ):
            assert command in text


class TestInformational:
    def test_scenes_lists_library(self, capsys):
        assert main(["scenes"]) == 0
        out = capsys.readouterr().out
        assert "PARK" in out and "SPRNG" in out

    def test_configs_show_presets_and_downscaling(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "MobileSoC" in out and "RTX2060" in out
        assert "K = 4" in out and "K = 6" in out


class TestImageCommands:
    def test_render_writes_ppm(self, tmp_path, capsys):
        out = tmp_path / "img.ppm"
        assert main(
            ["render", "SPRNG", "--size", "16", "--out", str(out)]
        ) == 0
        assert out.read_bytes().startswith(b"P6")

    def test_heatmap_quantized(self, tmp_path, capsys):
        out = tmp_path / "hm.ppm"
        code = main(
            ["heatmap", "SPRNG", "--size", "16", "--quantize", "4",
             "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "quantized to" in capsys.readouterr().out


class TestSimulationCommands:
    def test_simulate_prints_metrics(self, capsys):
        assert main(["simulate", "SPRNG", "--size", "32"]) == 0
        out = capsys.readouterr().out
        assert "ipc" in out and "cycles" in out

    def test_predict_plain(self, capsys):
        assert main(["predict", "SPRNG", "--size", "32"]) == 0
        out = capsys.readouterr().out
        assert "K=4" in out

    def test_predict_compare(self, capsys):
        assert main(["predict", "SPRNG", "--size", "32", "--compare"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "full sim" in out

    def test_predict_with_fraction_and_coarse(self, capsys):
        code = main(
            ["predict", "SPRNG", "--size", "32", "--division", "coarse",
             "--fraction", "0.5"]
        )
        assert code == 0
        assert "traced fraction 50%" in capsys.readouterr().out

    def test_predict_json(self, capsys):
        import json

        from repro.gpu import EXTENDED_METRICS, METRICS

        assert main(["predict", "SPRNG", "--size", "32", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scene"] == "SPRNG"
        assert payload["degraded"] is False
        assert payload["coverage"] == 1.0
        assert payload["failures"] == []
        assert set(payload["metrics"]) == set(METRICS) | set(EXTENDED_METRICS)

    def test_predict_json_compare_includes_errors(self, capsys):
        import json

        assert (
            main(["predict", "SPRNG", "--size", "32", "--json", "--compare"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["speedup"] > 1.0
        assert set(payload["errors"]) == set(payload["full_sim"])

    def test_predict_adaptive(self, capsys):
        assert main(["predict", "SPRNG", "--size", "32", "--adaptive"]) == 0
        assert "traced fraction" in capsys.readouterr().out

    def test_predict_fault_tolerance_flags_parse(self):
        args = build_parser().parse_args(
            ["predict", "PARK", "--workers", "2", "--timeout", "30",
             "--retries", "1", "--resume"]
        )
        assert args.workers == 2
        assert args.timeout == 30.0
        assert args.retries == 1
        assert args.resume is True
        assert args.checkpoint_dir is None

    def test_predict_checkpoints_and_resumes(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        first = main(
            ["predict", "SPRNG", "--size", "32",
             "--checkpoint-dir", str(ckpt)]
        )
        assert first == 0
        assert sorted(p.name for p in ckpt.iterdir()) == [
            f"group_{i:04d}.pkl" for i in range(4)
        ]
        first_out = capsys.readouterr().out
        # Resuming replays the checkpoints and prints the same summary.
        again = main(
            ["predict", "SPRNG", "--size", "32", "--resume",
             "--checkpoint-dir", str(ckpt)]
        )
        assert again == 0
        assert capsys.readouterr().out == first_out

    def test_simulate_with_config_file(self, capsys):
        from pathlib import Path

        ini = Path(__file__).resolve().parents[1] / "configs" / "rtx2060.ini"
        assert main(
            ["simulate", "SPRNG", "--size", "16", "--gpu", str(ini)]
        ) == 0
        assert "RTX2060" in capsys.readouterr().out

    def test_sweep_fits_power_law(self, capsys):
        code = main(
            ["sweep", "SPRNG", "--size", "32",
             "--percentages", "25,50,75"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fitted speedup" in out
        assert "deprecated alias" in out


class TestCampaignCommand:
    def test_campaign_run_prints_report(self, tmp_path, capsys):
        import json

        sheet = tmp_path / "c.json"
        sheet.write_text(
            json.dumps(
                {
                    "campaign": {"name": "clirun", "size": 10},
                    "points": [
                        {"scene": "SPRNG"},
                        {
                            "scene": {
                                "recipe": "saturation",
                                "knobs": {"level": 0.2},
                                "seed": 1,
                            }
                        },
                    ],
                }
            )
        )
        out_file = tmp_path / "report.json"
        code = main(["campaign", "run", str(sheet), "--out", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "clirun" in out and "pass" in out
        report = json.loads(out_file.read_text())
        assert report["succeeded"] is True
        assert len(report["points"]) == 2

    def test_campaign_run_invalid_sheet_is_usage_error(self, tmp_path, capsys):
        sheet = tmp_path / "bad.json"
        sheet.write_text('{"points": [{"scene": "NOPE"}]}')
        assert main(["campaign", "run", str(sheet)]) == 2
        assert "NOPE" in capsys.readouterr().err

    def test_campaign_status_requires_remote(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "status", "j-1"])


class TestTraceCommands:
    def test_trace_export_and_inspect(self, tmp_path, capsys):
        out = tmp_path / "f.ztrace"
        assert main(["trace", "SPRNG", "--size", "16", "--out", str(out)]) == 0
        assert out.exists()
        assert main(["inspect", str(out)]) == 0
        text = capsys.readouterr().out
        assert "SPRNG" in text and "node visits" in text

    def test_inspect_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.ztrace"
        bad.write_bytes(b"not a trace")
        assert main(["inspect", str(bad)]) == 2
        assert "not a .ztrace" in capsys.readouterr().err

    def test_extra_scene_accessible(self, capsys):
        assert main(["simulate", "CRNL", "--size", "16"]) == 0
        assert "cycles" in capsys.readouterr().out


class TestErrorHandling:
    def test_unknown_scene_is_reported(self, capsys):
        assert main(["simulate", "NOPE", "--size", "16"]) == 2
        assert "unknown scene" in capsys.readouterr().err

    def test_unknown_gpu_is_reported(self, capsys):
        assert main(
            ["simulate", "SPRNG", "--size", "16", "--gpu", "a100"]
        ) == 2
        assert "unknown GPU preset" in capsys.readouterr().err
