"""Tests for the experiment harness: caching runner, metrics, reporting."""

import math

import pytest

from repro.gpu import MOBILE_SOC, SimulationStats
from repro.harness import (
    Runner,
    Workload,
    format_table,
    format_value,
    mae,
    metric_errors,
    percent_error,
    save_result,
)


class TestMetrics:
    def test_percent_error_basics(self):
        assert percent_error(110.0, 100.0) == pytest.approx(10.0)
        assert percent_error(90.0, 100.0) == pytest.approx(10.0)
        assert percent_error(0.0, 0.0) == 0.0
        assert math.isinf(percent_error(5.0, 0.0))

    def test_metric_errors_against_stats(self):
        stats = SimulationStats(cycles=100.0, instructions=1000)
        predicted = stats.metrics()
        predicted["cycles"] = 120.0
        errors = metric_errors(predicted, stats)
        assert errors["cycles"] == pytest.approx(20.0)
        assert errors["ipc"] == 0.0

    def test_rate_metrics_use_percentage_points(self):
        stats = SimulationStats(
            cycles=100.0, instructions=1000, l1d_accesses=100, l1d_misses=2
        )
        predicted = stats.metrics()
        predicted["l1d_miss_rate"] = 0.04  # 2pp above the actual 0.02
        errors = metric_errors(predicted, stats)
        # 2% -> 4% miss rate is a 2-point error, not a "100% error".
        assert errors["l1d_miss_rate"] == pytest.approx(2.0)

    def test_mae_ignores_infinities(self):
        assert mae({"a": 10.0, "b": 20.0, "c": float("inf")}) == pytest.approx(15.0)
        assert mae([5.0, 15.0]) == pytest.approx(10.0)
        assert math.isinf(mae([float("inf")]))


class TestReporting:
    def test_format_value(self):
        assert format_value(1.23456) == "1.235"
        assert format_value(12345.6) == "12,346"
        assert format_value("x") == "x"
        assert format_value(float("nan")) == "nan"

    def test_format_table_aligns(self):
        table = format_table(
            ["scene", "err"], [["PARK", 1.5], ["SPRNG", 123.25]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "scene" in lines[1]
        assert len({len(l) for l in lines[2:]}) == 1  # aligned rows

    def test_save_result_roundtrip(self, tmp_path, monkeypatch):
        import repro.harness.reporting as reporting

        monkeypatch.setattr(reporting, "results_dir", lambda: tmp_path)
        path = reporting.save_result("unit_test", "hello")
        assert path.read_text() == "hello\n"


class TestWorkload:
    def test_key_distinguishes_parameters(self):
        a = Workload("PARK", width=64, height=64)
        b = Workload("PARK", width=128, height=128)
        c = Workload("BATH", width=64, height=64)
        assert len({a.key(), b.key(), c.key()}) == 3

    def test_settings_roundtrip(self):
        workload = Workload("SPRNG", width=16, height=8, samples_per_pixel=2, seed=3)
        settings = workload.settings()
        assert (settings.width, settings.height) == (16, 8)
        assert settings.samples_per_pixel == 2
        assert settings.seed == 3


class TestRunner:
    @pytest.fixture()
    def runner(self, tmp_path):
        return Runner(cache_dir=tmp_path)

    def test_frame_cached_in_memory_and_disk(self, runner, tmp_path):
        workload = Workload("SPRNG", width=16, height=16)
        first = runner.frame(workload)
        assert runner.frame(workload) is first  # memory cache
        assert any(p.name.startswith("frame_") for p in tmp_path.iterdir())
        # A fresh runner reloads from disk rather than re-tracing.
        fresh = Runner(cache_dir=tmp_path)
        reloaded = fresh.frame(workload)
        assert reloaded.pixels.keys() == first.pixels.keys()

    def test_full_sim_cached_and_deterministic(self, runner, tmp_path):
        workload = Workload("SPRNG", width=16, height=16)
        stats = runner.full_sim(workload, MOBILE_SOC)
        assert stats.cycles > 0
        fresh = Runner(cache_dir=tmp_path)
        assert fresh.full_sim(workload, MOBILE_SOC).cycles == stats.cycles

    def test_zatel_runs_through_runner(self, runner):
        workload = Workload("SPRNG", width=32, height=32)
        result = runner.zatel(workload, MOBILE_SOC)
        assert result.downscale_factor == 4
        assert result.metrics["cycles"] > 0
