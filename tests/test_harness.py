"""Tests for the experiment harness: caching runner, metrics, reporting."""

import math

import pytest

from repro.gpu import MOBILE_SOC, SimulationStats
from repro.harness import (
    Runner,
    Workload,
    format_table,
    format_value,
    mae,
    metric_errors,
    percent_error,
    save_result,
)


class TestMetrics:
    def test_percent_error_basics(self):
        assert percent_error(110.0, 100.0) == pytest.approx(10.0)
        assert percent_error(90.0, 100.0) == pytest.approx(10.0)
        assert percent_error(0.0, 0.0) == 0.0
        assert math.isinf(percent_error(5.0, 0.0))

    def test_metric_errors_against_stats(self):
        stats = SimulationStats(cycles=100.0, instructions=1000)
        predicted = stats.metrics()
        predicted["cycles"] = 120.0
        errors = metric_errors(predicted, stats)
        assert errors["cycles"] == pytest.approx(20.0)
        assert errors["ipc"] == 0.0

    def test_rate_metrics_use_percentage_points(self):
        stats = SimulationStats(
            cycles=100.0, instructions=1000, l1d_accesses=100, l1d_misses=2
        )
        predicted = stats.metrics()
        predicted["l1d_miss_rate"] = 0.04  # 2pp above the actual 0.02
        errors = metric_errors(predicted, stats)
        # 2% -> 4% miss rate is a 2-point error, not a "100% error".
        assert errors["l1d_miss_rate"] == pytest.approx(2.0)

    def test_mae_ignores_infinities(self):
        assert mae({"a": 10.0, "b": 20.0, "c": float("inf")}) == pytest.approx(15.0)
        assert mae([5.0, 15.0]) == pytest.approx(10.0)
        assert math.isinf(mae([float("inf")]))


class TestReporting:
    def test_format_value(self):
        assert format_value(1.23456) == "1.235"
        assert format_value(12345.6) == "12,346"
        assert format_value("x") == "x"
        assert format_value(float("nan")) == "nan"

    def test_format_table_aligns(self):
        table = format_table(
            ["scene", "err"], [["PARK", 1.5], ["SPRNG", 123.25]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "scene" in lines[1]
        assert len({len(l) for l in lines[2:]}) == 1  # aligned rows

    def test_save_result_roundtrip(self, tmp_path, monkeypatch):
        import repro.harness.reporting as reporting

        monkeypatch.setattr(reporting, "results_dir", lambda: tmp_path)
        path = reporting.save_result("unit_test", "hello")
        assert path.read_text() == "hello\n"


class TestWorkload:
    def test_key_distinguishes_parameters(self):
        a = Workload("PARK", width=64, height=64)
        b = Workload("PARK", width=128, height=128)
        c = Workload("BATH", width=64, height=64)
        assert len({a.key(), b.key(), c.key()}) == 3

    def test_settings_roundtrip(self):
        workload = Workload("SPRNG", width=16, height=8, samples_per_pixel=2, seed=3)
        settings = workload.settings()
        assert (settings.width, settings.height) == (16, 8)
        assert settings.samples_per_pixel == 2
        assert settings.seed == 3


class TestDegradedAccounting:
    class _FakeResult:
        def __init__(self, metrics, degraded, coverage=1.0, failures=()):
            self.metrics = metrics
            self.degraded = degraded
            self.coverage = coverage
            self.failures = list(failures)
            self.groups = []

    def test_result_errors_passthrough_for_full_runs(self):
        stats = SimulationStats(cycles=100.0, instructions=1000)
        result = self._FakeResult(stats.metrics(), degraded=False)
        from repro.harness import result_errors

        assert result_errors(result, stats)["cycles"] == 0.0
        assert result_errors(result, stats, require_full_coverage=True)

    def test_result_errors_rejects_degraded_when_strict(self):
        from repro.errors import DegradedResultError, FailureRecord
        from repro.harness import result_errors

        stats = SimulationStats(cycles=100.0, instructions=1000)
        result = self._FakeResult(
            stats.metrics(),
            degraded=True,
            coverage=0.75,
            failures=[FailureRecord(1, "WorkerCrashError", "boom", 3, 256)],
        )
        assert result_errors(result, stats)  # tolerant by default
        with pytest.raises(DegradedResultError, match="75%"):
            result_errors(result, stats, require_full_coverage=True)

    def test_degraded_summary_reports_coverage_and_failures(self):
        from repro.errors import FailureRecord
        from repro.harness import degraded_summary

        full = self._FakeResult({}, degraded=False)
        assert "full coverage" in degraded_summary(full)
        degraded = self._FakeResult(
            {},
            degraded=True,
            coverage=0.5,
            failures=[FailureRecord(2, "GroupTimeoutError", "slow", 2, 64)],
        )
        text = degraded_summary(degraded)
        assert "DEGRADED" in text and "50%" in text
        assert "group 2: GroupTimeoutError" in text


class TestRunner:
    @pytest.fixture()
    def runner(self, tmp_path):
        return Runner(cache_dir=tmp_path)

    def test_frame_cached_in_memory_and_disk(self, runner, tmp_path):
        workload = Workload("SPRNG", width=16, height=16)
        first = runner.frame(workload)
        assert runner.frame(workload) is first  # memory cache
        assert runner.store.path_for(Runner.frame_key(workload)).exists()
        # A fresh runner reloads from disk rather than re-tracing.
        fresh = Runner(cache_dir=tmp_path)
        reloaded = fresh.frame(workload)
        assert reloaded.pixels.keys() == first.pixels.keys()
        assert fresh.store.stats.disk_hits >= 1

    def test_full_sim_cached_and_deterministic(self, runner, tmp_path):
        workload = Workload("SPRNG", width=16, height=16)
        stats = runner.full_sim(workload, MOBILE_SOC)
        assert stats.cycles > 0
        fresh = Runner(cache_dir=tmp_path)
        assert fresh.full_sim(workload, MOBILE_SOC).cycles == stats.cycles

    def test_full_sim_key_hashes_entire_gpu_config(self, runner):
        """Regression: the old cache keyed ground truth by ``gpu.name``
        only, so editing a config under an unchanged name served stale
        simulations.  The key must cover every architectural field."""
        from dataclasses import replace

        workload = Workload("SPRNG", width=16, height=16)
        baseline = runner.full_sim(workload, MOBILE_SOC)
        edited = replace(MOBILE_SOC, num_sms=1)
        assert edited.name == MOBILE_SOC.name
        assert Runner.full_sim_key(workload, edited) != Runner.full_sim_key(
            workload, MOBILE_SOC
        )
        resimulated = runner.full_sim(workload, edited)
        # One SM must not round-trip the stale eight-SM entry.
        assert resimulated.cycles > baseline.cycles

    def test_zatel_runs_through_runner(self, runner):
        workload = Workload("SPRNG", width=32, height=32)
        result = runner.zatel(workload, MOBILE_SOC)
        assert result.downscale_factor == 4
        assert result.metrics["cycles"] > 0

    def test_zatel_accepts_execution_policy(self, runner, tmp_path):
        from repro.core import ExecutionPolicy

        workload = Workload("SPRNG", width=32, height=32)
        policy = ExecutionPolicy(
            checkpoint_dir=runner.checkpoint_dir(workload, MOBILE_SOC)
        )
        result = runner.zatel(workload, MOBILE_SOC, policy=policy)
        assert not result.degraded
        assert any(
            runner.checkpoint_dir(workload, MOBILE_SOC).iterdir()
        )


class TestCacheRobustness:
    """One truncated file from an interrupted run must never poison a
    later benchmark: corrupt caches are deleted and recomputed."""

    WORKLOAD = Workload("SPRNG", width=16, height=16)

    def _frame_path(self, cache_dir):
        path = Runner(cache_dir=cache_dir).store.path_for(
            Runner.frame_key(self.WORKLOAD)
        )
        assert path.exists()
        return path

    def test_no_temp_files_left_behind(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        runner.frame(self.WORKLOAD)
        runner.full_sim(self.WORKLOAD, MOBILE_SOC)
        assert not [p for p in tmp_path.rglob("*") if ".tmp" in p.name]

    def test_corrupt_frame_cache_is_recomputed(self, tmp_path, caplog):
        first = Runner(cache_dir=tmp_path).frame(self.WORKLOAD)
        path = self._frame_path(tmp_path)
        path.write_bytes(b"not a pickle at all")
        with caplog.at_level("WARNING", logger="repro.stages"):
            reloaded = Runner(cache_dir=tmp_path).frame(self.WORKLOAD)
        assert reloaded.pixels.keys() == first.pixels.keys()
        assert "corrupt cache file" in caplog.text
        # The healed file round-trips again.
        assert (
            Runner(cache_dir=tmp_path).frame(self.WORKLOAD).pixels.keys()
            == first.pixels.keys()
        )

    def test_truncated_full_sim_cache_is_recomputed(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        stats = runner.full_sim(self.WORKLOAD, MOBILE_SOC)
        path = runner.store.path_for(
            Runner.full_sim_key(self.WORKLOAD, MOBILE_SOC)
        )
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # interrupted writer
        fresh = Runner(cache_dir=tmp_path)
        assert fresh.full_sim(self.WORKLOAD, MOBILE_SOC).cycles == stats.cycles

    def test_empty_cache_file_is_recomputed(self, tmp_path):
        first = Runner(cache_dir=tmp_path).frame(self.WORKLOAD)
        self._frame_path(tmp_path).write_bytes(b"")
        reloaded = Runner(cache_dir=tmp_path).frame(self.WORKLOAD)
        assert reloaded.pixels.keys() == first.pixels.keys()
