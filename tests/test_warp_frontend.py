"""Tests for warp ops and the trace-to-warp kernel front-end."""

import pytest

from repro.gpu import ComputeOp, StoreOp, TraceOp, WarpTask, compile_kernel
from repro.tracer import FILTER_EXIT_INSTRUCTIONS
from repro.tracer.trace import FrameTrace, PixelTrace, RaySegment, SegmentKind


class TestWarpOps:
    def test_compute_op_issue_and_instruction_counts(self):
        op = ComputeOp((10, 0, 4, 8))
        assert op.issue_cycles() == 10       # lock-step max
        assert op.instruction_count() == 22  # per-thread sum
        assert op.active_lanes() == 3

    def test_trace_op_lockstep_steps(self):
        op = TraceOp(
            per_thread_nodes=([0, 1, 2], None, [0, 5]),
            per_thread_tris=([7], None, []),
        )
        assert op.max_node_steps() == 3
        assert op.max_tri_steps() == 1
        assert op.active_lanes() == 2
        assert op.instruction_count() == 2  # one traceRayEXT per live lane

    def test_store_op(self):
        op = StoreOp((0x100, None, 0x200))
        assert op.active_lanes() == 2
        assert op.instruction_count() == 2

    def test_warp_task_instruction_total(self):
        task = WarpTask(
            warp_id=0,
            pixels=((0, 0),),
            ops=[ComputeOp((5,)), StoreOp((0x10,))],
        )
        assert task.instruction_count() == 6


def make_frame(width=4, height=1, segment_counts=(1, 2, 0, 1)):
    """A synthetic frame whose pixel i has segment_counts[i] segments."""
    frame = FrameTrace(
        width=width, height=height, samples_per_pixel=1, scene_name="synthetic"
    )
    for x in range(width):
        trace = PixelTrace(px=x, py=0, raygen_instructions=20)
        for s in range(segment_counts[x]):
            trace.segments.append(
                RaySegment(
                    kind=SegmentKind.PRIMARY if s == 0 else SegmentKind.SHADOW,
                    nodes=[0, 1 + s],
                    tris=[x],
                    hit=True,
                    shade_instructions=7,
                )
            )
        frame.pixels[(x, 0)] = trace
    return frame


class TestCompileKernel:
    def test_one_warp_per_32_pixels(self, small_frame, small_scene, small_settings):
        pixels = small_settings.all_pixels()
        warps = compile_kernel(small_frame, pixels, small_scene.addresses)
        assert len(warps) == len(pixels) // 32

    def test_slot_structure_alternates(self):
        frame = make_frame()
        warps = compile_kernel(frame, [(x, 0) for x in range(4)], _amap())
        ops = warps[0].ops
        assert isinstance(ops[0], ComputeOp)          # ray-gen
        assert isinstance(ops[1], TraceOp)            # segment 0
        assert isinstance(ops[2], ComputeOp)          # shade 0
        assert isinstance(ops[3], TraceOp)            # segment 1 (one lane)
        assert isinstance(ops[4], ComputeOp)
        assert isinstance(ops[-1], StoreOp)

    def test_lanes_mask_off_after_their_last_segment(self):
        frame = make_frame()
        warps = compile_kernel(frame, [(x, 0) for x in range(4)], _amap())
        second_trace = warps[0].ops[3]
        # Only pixel 1 has a second segment.
        live = [n is not None for n in second_trace.per_thread_nodes[:4]]
        assert live == [False, True, False, False]

    def test_no_filtering_counts_all_live(self):
        frame = make_frame()
        warps = compile_kernel(frame, [(x, 0) for x in range(4)], _amap())
        assert warps[0].live_pixels == 4
        assert warps[0].filtered_pixels == 0

    def test_filtered_lanes_get_exit_stub(self):
        frame = make_frame()
        selected = {(0, 0), (2, 0)}
        warps = compile_kernel(
            frame, [(x, 0) for x in range(4)], _amap(), selected=selected
        )
        setup = warps[0].ops[0].per_thread_instructions
        assert setup[1] == FILTER_EXIT_INSTRUCTIONS  # filtered out
        assert setup[0] == 20 + FILTER_EXIT_INSTRUCTIONS  # survivor pays overhead
        assert warps[0].live_pixels == 2
        assert warps[0].filtered_pixels == 2

    def test_filtered_lanes_never_trace_or_store(self):
        frame = make_frame()
        warps = compile_kernel(
            frame, [(x, 0) for x in range(4)], _amap(), selected={(0, 0)}
        )
        trace_op = warps[0].ops[1]
        assert trace_op.per_thread_nodes[1] is None
        store = warps[0].ops[-1]
        assert store.per_thread_addresses[1] is None
        assert store.per_thread_addresses[0] is not None

    def test_partial_last_warp(self):
        frame = make_frame()
        warps = compile_kernel(frame, [(0, 0), (1, 0), (2, 0)], _amap())
        assert len(warps) == 1
        assert len(warps[0].pixels) == 3

    def test_missing_trace_raises(self):
        frame = make_frame()
        with pytest.raises(KeyError):
            compile_kernel(frame, [(9, 9)], _amap())


def _amap():
    from repro.scene.scene import AddressMap

    return AddressMap()
