"""Fault-tolerant pipeline behaviour: retries, degraded combine, quorum,
checkpoint resume.  Uses the small 32x32 scene (K = 4 groups on the
Mobile SoC) with deterministic fault injection."""

import pytest

from repro.core import ExecutionPolicy, Zatel, combine_degraded_metrics
from repro.core.pipeline import ZatelResult
from repro.errors import DegradedResultError
from repro.gpu import MOBILE_SOC, METRICS
from repro.gpu.stats import MetricKind
from repro.testing import FaultPlan, crash, exception, hang
from repro.testing.faults import ALWAYS

FAST = {"backoff_base": 0.0, "backoff_cap": 0.0}


@pytest.fixture(scope="module")
def baseline(small_scene, small_frame):
    """The no-fault prediction every fault-injected run is compared to."""
    return Zatel(MOBILE_SOC).predict(small_scene, small_frame)


class TestRetriedToSuccess:
    def test_crashed_worker_is_retried_bit_identically(
        self, small_scene, small_frame, baseline
    ):
        plan = FaultPlan([crash(1)])
        policy = ExecutionPolicy(workers=2, retries=2, **FAST)
        result = Zatel(MOBILE_SOC).predict(
            small_scene, small_frame, policy=policy, fault_plan=plan
        )
        assert not result.degraded
        assert result.failures == []
        assert result.metrics == baseline.metrics
        assert [g.selected_count for g in result.groups] == [
            g.selected_count for g in baseline.groups
        ]

    def test_every_single_group_crash_is_survivable(
        self, small_scene, small_frame, baseline
    ):
        # Acceptance criterion: killing ANY single group worker still
        # yields the bit-identical result after a retry.
        for group in range(len(baseline.groups)):
            plan = FaultPlan([crash(group)])
            policy = ExecutionPolicy(workers=2, retries=1, **FAST)
            result = Zatel(MOBILE_SOC).predict(
                small_scene, small_frame, policy=policy, fault_plan=plan
            )
            assert result.metrics == baseline.metrics, f"group {group}"
            assert not result.degraded

    def test_hung_worker_is_killed_and_retried(
        self, small_scene, small_frame, baseline
    ):
        plan = FaultPlan([hang(0, attempts=1)])
        policy = ExecutionPolicy(workers=2, retries=1, timeout=5.0, **FAST)
        result = Zatel(MOBILE_SOC).predict(
            small_scene, small_frame, policy=policy, fault_plan=plan
        )
        assert not result.degraded
        assert result.metrics == baseline.metrics

    def test_transient_exception_serial_path(
        self, small_scene, small_frame, baseline
    ):
        plan = FaultPlan([exception(3, attempts=1)])
        policy = ExecutionPolicy(workers=1, retries=1, **FAST)
        result = Zatel(MOBILE_SOC).predict(
            small_scene, small_frame, policy=policy, fault_plan=plan
        )
        assert result.metrics == baseline.metrics


class TestDegradedCombine:
    @pytest.fixture(scope="class")
    def degraded(self, small_scene, small_frame):
        plan = FaultPlan([exception(2, attempts=ALWAYS)])
        policy = ExecutionPolicy(workers=1, retries=1, **FAST)
        return Zatel(MOBILE_SOC).predict(
            small_scene, small_frame, policy=policy, fault_plan=plan
        )

    def test_flags_and_audit_trail(self, degraded):
        assert degraded.degraded is True
        assert len(degraded.groups) == 3
        (record,) = degraded.failures
        assert record.index == 2
        assert record.error == "SimulationError"
        assert record.attempts == 2
        assert record.pixel_count == 256  # one fine-grained 32x32 group
        assert degraded.coverage == pytest.approx(0.75)

    def test_metrics_renormalized_over_survivors(self, degraded, baseline):
        survivors = [g.metrics for g in baseline.groups if g.index != 2]
        coverage = 3 / 4
        expected = combine_degraded_metrics(survivors, coverage)
        assert degraded.metrics == expected
        for name in METRICS:
            values = [m[name] for m in survivors]
            if MetricKind.BY_METRIC[name] == MetricKind.THROUGHPUT:
                assert degraded.metrics[name] == pytest.approx(
                    sum(values) / coverage
                )
            else:
                assert degraded.metrics[name] == pytest.approx(
                    sum(values) / len(values)
                )

    def test_degraded_estimate_stays_close_to_full(self, degraded, baseline):
        # Renormalization keeps the degraded estimate in the same ballpark
        # as the full combine (fine-grained groups sample homogeneously).
        for name in ("cycles", "ipc"):
            assert degraded.metrics[name] == pytest.approx(
                baseline.metrics[name], rel=0.25
            )

    def test_work_accounting_still_defined_for_survivors(self, degraded):
        assert degraded.total_work_units > 0
        assert degraded.max_group_work_units > 0
        assert 0.3 <= degraded.mean_fraction() <= 0.6


class TestQuorum:
    def test_below_default_quorum_raises(self, small_scene, small_frame):
        plan = FaultPlan(
            [exception(i, attempts=ALWAYS) for i in (0, 1, 2)]
        )
        policy = ExecutionPolicy(workers=1, retries=0, **FAST)
        with pytest.raises(DegradedResultError, match="quorum"):
            Zatel(MOBILE_SOC).predict(
                small_scene, small_frame, policy=policy, fault_plan=plan
            )

    def test_quorum_override_allows_deeper_degradation(
        self, small_scene, small_frame
    ):
        plan = FaultPlan(
            [exception(i, attempts=ALWAYS) for i in (0, 1, 2)]
        )
        policy = ExecutionPolicy(workers=1, retries=0, quorum=1, **FAST)
        result = Zatel(MOBILE_SOC).predict(
            small_scene, small_frame, policy=policy, fault_plan=plan
        )
        assert result.degraded
        assert len(result.groups) == 1
        assert len(result.failures) == 3
        assert result.coverage == pytest.approx(0.25)

    def test_stricter_quorum_rejects_single_failure(
        self, small_scene, small_frame
    ):
        plan = FaultPlan([exception(0, attempts=ALWAYS)])
        policy = ExecutionPolicy(workers=1, retries=0, quorum=4, **FAST)
        with pytest.raises(DegradedResultError):
            Zatel(MOBILE_SOC).predict(
                small_scene, small_frame, policy=policy, fault_plan=plan
            )


class TestCheckpointResume:
    def test_interrupted_run_resumes_missing_groups_only(
        self, small_scene, small_frame, baseline, tmp_path, monkeypatch
    ):
        # "Interrupt" a strict run: group 3 fails permanently, quorum 4
        # aborts the predict — but groups 0-2 are already checkpointed.
        plan = FaultPlan([exception(3, attempts=ALWAYS)])
        strict = ExecutionPolicy(
            workers=1, retries=0, quorum=4, checkpoint_dir=tmp_path, **FAST
        )
        with pytest.raises(DegradedResultError):
            Zatel(MOBILE_SOC).predict(
                small_scene, small_frame, policy=strict, fault_plan=plan
            )
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "group_0000.pkl",
            "group_0001.pkl",
            "group_0002.pkl",
        ]

        # Resume without faults: only the missing group simulates.
        from repro.gpu.simulator import CycleSimulator

        runs = []
        original = CycleSimulator.run

        def counting_run(self, warps):
            runs.append(1)
            return original(self, warps)

        monkeypatch.setattr(CycleSimulator, "run", counting_run)
        resumed = Zatel(MOBILE_SOC).predict(
            small_scene,
            small_frame,
            policy=ExecutionPolicy(checkpoint_dir=tmp_path, resume=True),
        )
        assert len(runs) == 1  # one simulation: group 3 only
        assert resumed.metrics == baseline.metrics
        assert not resumed.degraded

    def test_full_checkpointed_rerun_simulates_nothing(
        self, small_scene, small_frame, baseline, tmp_path, monkeypatch
    ):
        policy = ExecutionPolicy(checkpoint_dir=tmp_path)
        Zatel(MOBILE_SOC).predict(small_scene, small_frame, policy=policy)

        from repro.gpu.simulator import CycleSimulator

        def forbidden_run(self, warps):
            raise AssertionError("fully-checkpointed rerun must not simulate")

        monkeypatch.setattr(CycleSimulator, "run", forbidden_run)
        resumed = Zatel(MOBILE_SOC).predict(
            small_scene,
            small_frame,
            policy=ExecutionPolicy(checkpoint_dir=tmp_path, resume=True),
        )
        assert resumed.metrics == baseline.metrics


class TestSerialParallelEquivalence:
    def test_policy_paths_are_bit_identical(
        self, small_scene, small_frame, baseline
    ):
        for policy in (
            ExecutionPolicy(workers=1),
            ExecutionPolicy(workers=2),
            ExecutionPolicy(workers=4, retries=3),
        ):
            result = Zatel(MOBILE_SOC).predict(
                small_scene, small_frame, policy=policy
            )
            assert result.metrics == baseline.metrics
            assert [g.fraction for g in result.groups] == [
                g.fraction for g in baseline.groups
            ]

    def test_workers_argument_overrides_policy(self, small_scene, small_frame):
        # Back-compat: predict(..., workers=N) still works and equals the
        # policy path.
        a = Zatel(MOBILE_SOC).predict(small_scene, small_frame, workers=2)
        b = Zatel(MOBILE_SOC).predict(
            small_scene, small_frame, policy=ExecutionPolicy(workers=2)
        )
        assert a.metrics == b.metrics


class TestEmptyResultGuards:
    def _empty_result(self, baseline):
        from repro.errors import FailureRecord

        return ZatelResult(
            metrics={},
            groups=[],
            downscale_factor=4,
            gpu_name="MobileSoC",
            scaled_gpu_name="MobileSoC_K4",
            heatmap=baseline.heatmap,
            quantized=baseline.quantized,
            degraded=True,
            failures=[
                FailureRecord(0, "WorkerCrashError", "boom", 3, 256)
            ],
        )

    def test_max_group_work_units_raises_clearly(self, baseline):
        result = self._empty_result(baseline)
        with pytest.raises(DegradedResultError, match="no surviving groups"):
            result.max_group_work_units

    def test_mean_fraction_raises_clearly(self, baseline):
        result = self._empty_result(baseline)
        with pytest.raises(DegradedResultError, match="no surviving groups"):
            result.mean_fraction()

    def test_coverage_of_empty_result(self, baseline):
        assert self._empty_result(baseline).coverage == 0.0
